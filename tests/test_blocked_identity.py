"""Equivalence of the fused block-major executor and the reference.

The blocked engine permutes edges once into block-major order and
dispatches whole super-block rows in fused calls; these tests pin down
that none of that reordering changes the answer, across PU counts,
interval counts, and weighted/unweighted graphs.

Min/label-propagation algorithms (BFS, CC, SSSP) must be *bit*
identical: min is order-independent.  Sum-based algorithms (PR, SpMV)
accumulate floating point in a different order per block, so they are
compared to tight tolerance instead.
"""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    PageRank,
    SSSP,
    SpMV,
    run_blocked,
    run_vectorized,
)
from repro.graph import IntervalBlockPartition
from repro.graph.partition import clear_partition_cache, partition_cache_len

EXACT = [BFS, ConnectedComponents, SSSP]
SUMMED = [PageRank, SpMV]
GRIDS = [(4, 1), (4, 2), (4, 4), (8, 1), (8, 2), (8, 4)]


def _graphs(small_rmat, weighted_graph):
    return {"unweighted": small_rmat, "weighted": weighted_graph}


class TestExactIdentity:
    @pytest.mark.parametrize("factory", EXACT)
    @pytest.mark.parametrize("p,n", GRIDS)
    def test_min_based_bit_identical(self, factory, p, n, small_rmat,
                                     weighted_graph):
        for graph in (small_rmat, weighted_graph):
            vec = run_vectorized(factory(), graph)
            blk = run_blocked(factory(), graph, num_intervals=p, num_pus=n)
            np.testing.assert_array_equal(blk.values, vec.values)
            assert blk.iterations == vec.iterations
            assert blk.active_sources == vec.active_sources


class TestSummedEquivalence:
    @pytest.mark.parametrize("factory", SUMMED)
    @pytest.mark.parametrize("p,n", GRIDS)
    def test_sum_based_close(self, factory, p, n, small_rmat,
                             weighted_graph):
        for graph in (small_rmat, weighted_graph):
            vec = run_vectorized(factory(), graph)
            blk = run_blocked(factory(), graph, num_intervals=p, num_pus=n)
            np.testing.assert_allclose(blk.values, vec.values,
                                       rtol=1e-12, atol=1e-12)
            assert blk.iterations == vec.iterations


class TestPartitionMemo:
    def test_cached_returns_same_object(self, small_rmat):
        clear_partition_cache()
        a = IntervalBlockPartition.cached(small_rmat, 8)
        b = IntervalBlockPartition.cached(small_rmat, 8)
        assert a is b
        assert partition_cache_len() == 1

    def test_blocked_runs_share_one_partition(self, small_rmat):
        """Two blocked executions at the same P reuse the memoised
        partition: the permute-once preprocessing really happens once."""
        clear_partition_cache()
        run_blocked(PageRank(), small_rmat, num_intervals=8, num_pus=2)
        assert partition_cache_len() == 1
        run_blocked(BFS(0), small_rmat, num_intervals=8, num_pus=4)
        # BFS streams the same (unweighted) graph at the same P: no new
        # partition was built.
        assert partition_cache_len() == 1

    def test_distinct_p_distinct_entries(self, small_rmat):
        clear_partition_cache()
        IntervalBlockPartition.cached(small_rmat, 4)
        IntervalBlockPartition.cached(small_rmat, 8)
        assert partition_cache_len() == 2

    def test_streamed_edges_preserve_multiset(self, small_rmat):
        part = IntervalBlockPartition.cached(small_rmat, 8)
        src, dst, weights = part.streamed_edges
        assert weights is None
        original = sorted(zip(small_rmat.src.tolist(),
                              small_rmat.dst.tolist()))
        permuted = sorted(zip(src.tolist(), dst.tolist()))
        assert permuted == original
