"""Property-based tests: the dynamic store tracks a reference multiset."""

from collections import Counter

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.dynamic import DynamicGraphStore
from repro.graph import Graph


class DynamicStoreMachine(RuleBasedStateMachine):
    """Random op sequences must keep the store consistent with a plain
    Counter-based reference model."""

    @initialize(
        n=st.integers(min_value=4, max_value=24),
        edges=st.lists(
            st.tuples(st.integers(0, 23), st.integers(0, 23)),
            max_size=40,
        ),
    )
    def setup(self, n, edges):
        edges = [(s % n, d % n) for s, d in edges]
        graph = Graph.from_edges(n, edges)
        self.store = DynamicGraphStore(graph, num_intervals=min(4, n))
        self.reference = Counter(edges)
        self.live = set(range(n))
        self.n = n

    @rule(data=st.data())
    def add_edge(self, data):
        if not self.live:
            return
        live = sorted(self.live)
        s = data.draw(st.sampled_from(live))
        d = data.draw(st.sampled_from(live))
        self.store.add_edge(s, d)
        self.reference[(s, d)] += 1

    @rule(data=st.data())
    def delete_edge(self, data):
        existing = [e for e, c in self.reference.items() if c > 0]
        if not existing:
            return
        edge = data.draw(st.sampled_from(sorted(existing)))
        self.store.delete_edge(*edge)
        self.reference[edge] -= 1

    @rule()
    def add_vertex(self):
        v = self.store.add_vertex()
        self.live.add(v)
        self.n = max(self.n, v + 1)

    @rule(data=st.data())
    def delete_vertex(self, data):
        if not self.live:
            return
        v = data.draw(st.sampled_from(sorted(self.live)))
        self.store.delete_vertex(v)
        self.live.discard(v)

    @invariant()
    def edge_multiset_matches(self):
        expected = +self.reference  # drop zero-count entries
        exported = self.store.to_graph()
        actual = Counter(zip(exported.src.tolist(), exported.dst.tolist()))
        assert actual == expected

    @invariant()
    def edge_count_matches(self):
        assert self.store.num_edges == sum(self.reference.values())


DynamicStoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestDynamicStoreStateful = DynamicStoreMachine.TestCase


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60
    )
)
@settings(max_examples=40, deadline=None)
def test_add_then_delete_everything_empties_store(pairs):
    graph = Graph.empty(16)
    store = DynamicGraphStore(graph, num_intervals=4)
    for s, d in pairs:
        store.add_edge(s, d)
    for s, d in pairs:
        store.delete_edge(s, d)
    assert store.num_edges == 0
    assert store.to_graph().num_edges == 0
