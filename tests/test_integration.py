"""End-to-end integration tests across the public API."""

import numpy as np
import pytest

import repro
from repro import (
    AcceleratorMachine,
    DynamicGraphStore,
    Graph,
    GraphRMachine,
    HyVEConfig,
    PageRank,
    Workload,
    make_machine,
    rmat,
)
from repro.algorithms import BFS, run_blocked, run_vectorized
from repro.dynamic import apply_requests, generate_requests


class TestQuickstartFlow:
    """The README quickstart must work exactly as written."""

    def test_quickstart(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        machine = AcceleratorMachine(HyVEConfig())
        result = machine.run(PageRank(), graph)
        assert "MTEPS/W" in result.report.summary()
        assert result.values.sum() == pytest.approx(1.0, abs=1e-9)

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestFullPipeline:
    def test_generate_partition_simulate(self):
        graph = rmat(1000, 8000, seed=17)
        workload = Workload(
            graph,
            reported_vertices=1_000_000,
            reported_edges=8_000_000,
        )
        machines = [
            make_machine("acc+HyVE-opt"),
            make_machine("acc+SRAM+DRAM"),
            GraphRMachine(),
        ]
        reports = [m.run(PageRank(), workload).report for m in machines]
        opt, sd, graphr = reports
        assert opt.mteps_per_watt > sd.mteps_per_watt
        assert opt.mteps_per_watt > graphr.mteps_per_watt
        # All three machines computed the same algorithm result.
        assert opt.edges_traversed == sd.edges_traversed

    def test_dynamic_then_static_analysis(self):
        graph = rmat(500, 4000, seed=23)
        store = DynamicGraphStore(graph, num_intervals=8)
        requests = generate_requests(graph, 2000, seed=3)
        apply_requests(store, requests)
        evolved = store.to_graph("evolved")
        # The evolved graph feeds straight back into the simulator.
        report = AcceleratorMachine().run(BFS(), evolved).report
        assert report.total_energy > 0

    def test_blocked_execution_matches_machine_results(self):
        graph = rmat(512, 4096, seed=29)
        machine_values = AcceleratorMachine().run(PageRank(), graph).values
        blocked = run_blocked(PageRank(), graph, num_intervals=8, num_pus=4)
        np.testing.assert_allclose(machine_values, blocked.values)

    def test_weighted_flow(self):
        from repro.algorithms import SSSP
        from repro.graph import random_weights

        graph = random_weights(rmat(300, 2000, seed=31), seed=31)
        result = AcceleratorMachine().run(SSSP(0), graph)
        assert result.report.algorithm == "SSSP"
        assert np.isfinite(result.values[0])

    def test_cross_machine_energy_breakdown_consistency(self):
        graph = rmat(400, 3000, seed=37)
        for name in ("acc+DRAM", "acc+ReRAM", "acc+SRAM+DRAM",
                     "acc+HyVE", "acc+HyVE-opt"):
            report = make_machine(name).run(PageRank(), graph).report
            assert sum(report.breakdown().values()) == pytest.approx(1.0)
            assert report.time > 0


class TestIoRoundTripThroughSimulation:
    def test_save_load_simulate(self, tmp_path):
        from repro.graph import io

        graph = rmat(200, 1500, seed=41)
        path = tmp_path / "g.npz"
        io.save_binary(graph, path)
        loaded = io.load_binary(path)
        a = run_vectorized(PageRank(), graph)
        b = run_vectorized(PageRank(), loaded)
        np.testing.assert_allclose(a.values, b.values)
