"""Tests for the general model of Section 6.1 (Equations (1)-(6))."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.model.equations import (
    ModelCosts,
    ModelCounts,
    OperationCost,
    edp,
    edp_lower_bound,
    energy,
    execution_time,
    graphr_counts,
    hyve_counts,
)


def costs(**overrides):
    base = dict(
        read_edge=OperationCost(1e-9, 10e-12),
        read_vertex_seq=OperationCost(2e-9, 20e-12),
        write_vertex_seq=OperationCost(3e-9, 30e-12),
        read_vertex_rand=OperationCost(1e-9, 25e-12),
        write_vertex_rand=OperationCost(1e-9, 25e-12),
        process=OperationCost(1.5e-9, 4e-12),
    )
    base.update(overrides)
    return ModelCosts(**base)


class TestCounts:
    def test_random_traffic_tied_to_edges(self):
        counts = ModelCounts(100.0, 10.0, 5.0)
        assert counts.vertex_rand_reads == 100.0
        assert counts.vertex_rand_writes == 100.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            ModelCounts(-1.0, 0.0, 0.0)

    def test_operation_cost_rejects_negative(self):
        with pytest.raises(ConfigError):
            OperationCost(-1.0, 0.0)


class TestExecutionTime:
    def test_pipeline_uses_slowest_stage(self):
        counts = ModelCounts(edge_reads=10.0, vertex_seq_reads=0.0,
                             vertex_seq_writes=0.0)
        c = costs(process=OperationCost(7e-9, 1e-12))
        assert execution_time(counts, c) == pytest.approx(10 * 7e-9)

    def test_sequential_phases_add(self):
        counts = ModelCounts(edge_reads=0.0, vertex_seq_reads=4.0,
                             vertex_seq_writes=2.0)
        assert execution_time(counts, costs()) == pytest.approx(
            4 * 2e-9 + 2 * 3e-9
        )


class TestEnergy:
    def test_equation2_terms(self):
        counts = ModelCounts(edge_reads=1.0, vertex_seq_reads=1.0,
                             vertex_seq_writes=1.0)
        c = costs()
        expected = (
            20e-12            # seq read
            + 2 * 25e-12      # two random reads per edge
            + 10e-12          # edge read
            + 4e-12           # pu
            + 25e-12          # random write
            + 30e-12          # seq write
        )
        assert energy(counts, c) == pytest.approx(expected)


class TestEdpBound:
    def test_bound_holds_on_example(self):
        counts = ModelCounts(1000.0, 100.0, 50.0)
        c = costs()
        assert edp(counts, c) >= edp_lower_bound(counts, c) * 0.999

    @given(
        st.floats(min_value=1.0, max_value=1e9),
        st.floats(min_value=0.0, max_value=1e8),
        st.floats(min_value=0.0, max_value=1e8),
    )
    @settings(max_examples=100, deadline=None)
    def test_cauchy_schwarz_bound_always_holds(self, e, rs, ws):
        counts = ModelCounts(e, rs, ws)
        c = costs()
        assert edp(counts, c) >= edp_lower_bound(counts, c) * (1 - 1e-9)


class TestCountConstructors:
    def test_hyve_equation8(self):
        counts = hyve_counts(1000.0, 5000.0, num_intervals=40, num_pus=8,
                             iterations=3)
        assert counts.vertex_seq_reads == pytest.approx(5 * 1000 * 3)
        assert counts.vertex_seq_writes == pytest.approx(1000 * 3)
        assert counts.edge_reads == pytest.approx(15000)

    def test_graphr_equation9(self):
        counts = graphr_counts(1000.0, 5000.0, nonempty_blocks=3000.0)
        assert counts.vertex_seq_reads == pytest.approx(16 * 3000)

    def test_graphr_reads_dwarf_hyve_reads(self):
        # The Section 6.3 point: 16 * E/N_avg >> (P/N) * N_v.
        hyve = hyve_counts(1e6, 14e6, 40, 8)
        graphr = graphr_counts(1e6, 14e6, 14e6 / 1.5)
        assert graphr.vertex_seq_reads > 10 * hyve.vertex_seq_reads

    def test_validation(self):
        with pytest.raises(ConfigError):
            hyve_counts(1.0, 1.0, 0, 8)
        with pytest.raises(ConfigError):
            graphr_counts(1.0, 1.0, -1.0)
