"""Tests for the memory device base abstractions."""

import pytest

from repro.errors import MemoryModelError
from repro.memory import (
    AccessCost,
    AccessKind,
    AccessPattern,
    DeviceTimings,
    MemoryStats,
    TimingsDevice,
)
from repro.units import NS, PJ


@pytest.fixture
def timings():
    return DeviceTimings(
        access_bits=512,
        read_energy=100 * PJ,
        write_energy=200 * PJ,
        read_latency=2 * NS,
        write_latency=10 * NS,
        random_read_latency=30 * NS,
        random_write_latency=40 * NS,
        random_read_energy=120 * PJ,
        random_write_energy=220 * PJ,
        standby_power=0.01,
        gated_power=0.001,
    )


@pytest.fixture
def device(timings):
    return TimingsDevice(timings)


class TestAccessCost:
    def test_rejects_negative(self):
        with pytest.raises(MemoryModelError):
            AccessCost(-1.0, 0.0)
        with pytest.raises(MemoryModelError):
            AccessCost(0.0, -1.0)

    def test_scaled(self):
        cost = AccessCost(2.0, 3.0).scaled(4)
        assert cost.latency == 8.0
        assert cost.energy == 12.0


class TestDeviceTimings:
    def test_rejects_zero_width(self):
        with pytest.raises(MemoryModelError):
            DeviceTimings(0, 1, 1, 1, 1)

    def test_rejects_negative_energy(self):
        with pytest.raises(MemoryModelError):
            DeviceTimings(512, -1, 1, 1, 1)

    def test_energy_per_bit(self, timings):
        assert timings.energy_per_bit() == pytest.approx(100 * PJ / 512)
        assert timings.energy_per_bit(AccessKind.WRITE) == pytest.approx(
            200 * PJ / 512
        )


class TestTimingsDevice:
    def test_sequential_read(self, device):
        cost = device.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
        assert cost.energy == 100 * PJ
        assert cost.latency == 2 * NS

    def test_random_read_uses_random_fields(self, device):
        cost = device.access_cost(AccessKind.READ, AccessPattern.RANDOM)
        assert cost.latency == 30 * NS
        assert cost.energy == 120 * PJ

    def test_random_falls_back_to_sequential(self):
        dev = TimingsDevice(DeviceTimings(512, 1 * PJ, 2 * PJ, 1 * NS, 2 * NS))
        cost = dev.access_cost(AccessKind.READ, AccessPattern.RANDOM)
        assert cost.energy == 1 * PJ
        assert cost.latency == 1 * NS


class TestTransferCost:
    def test_bulk_sequential_is_exact_ratio(self, device):
        cost = device.transfer_cost(
            AccessKind.READ, 256, AccessPattern.SEQUENTIAL
        )
        assert cost.energy == pytest.approx(50 * PJ)

    def test_random_rounds_up(self, device):
        cost = device.transfer_cost(AccessKind.READ, 32, AccessPattern.RANDOM)
        assert cost.energy == pytest.approx(120 * PJ)  # full access

    def test_zero_bits_free(self, device):
        cost = device.transfer_cost(AccessKind.READ, 0, AccessPattern.RANDOM)
        assert cost.energy == 0.0 and cost.latency == 0.0

    def test_rejects_negative_bits(self, device):
        with pytest.raises(MemoryModelError):
            device.transfer_cost(AccessKind.READ, -1, AccessPattern.RANDOM)


class TestStats:
    def test_read_write_recorded(self, device):
        device.read(1024, AccessPattern.SEQUENTIAL)
        device.write(512, AccessPattern.SEQUENTIAL, count=3)
        assert device.stats.reads == 1
        assert device.stats.writes == 3
        assert device.stats.read_bits == 1024
        assert device.stats.write_bits == 3 * 512
        assert device.stats.dynamic_energy > 0

    def test_reset(self, device):
        device.read(512, AccessPattern.SEQUENTIAL)
        device.reset_stats()
        assert device.stats.reads == 0
        assert device.stats.dynamic_energy == 0.0

    def test_merged(self):
        a = MemoryStats(reads=1, read_bits=64, dynamic_energy=1.0)
        b = MemoryStats(writes=2, write_bits=128, busy_time=0.5)
        m = a.merged(b)
        assert m.reads == 1 and m.writes == 2
        assert m.read_bits == 64 and m.write_bits == 128


class TestBackground:
    def test_full_power(self, device):
        assert device.background_energy(10.0) == pytest.approx(0.1)

    def test_gated(self, device):
        energy = device.background_energy(10.0, gated_fraction=1.0)
        assert energy == pytest.approx(0.01)

    def test_partial_gating_interpolates(self, device):
        half = device.background_energy(10.0, gated_fraction=0.5)
        assert half == pytest.approx((0.01 + 0.001) / 2 * 10)

    def test_rejects_negative_duration(self, device):
        with pytest.raises(MemoryModelError):
            device.background_energy(-1.0)

    def test_rejects_bad_fraction(self, device):
        with pytest.raises(MemoryModelError):
            device.background_energy(1.0, gated_fraction=1.5)
