"""Tests for the experiment drivers: shape and headline claims.

These tests pin the *reproduced trends* of every figure/table —
orderings, crossovers and approximate factors — not exact numbers.
They run the real simulation pipeline end to end.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig21,
    table1,
    table3,
    table4,
)
from repro.experiments.common import geomean


class TestExperimentResult:
    def test_add_validates_column_count(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        with pytest.raises(ValueError):
            r.add(1)

    def test_column_extraction(self):
        r = ExperimentResult("x", "t", ["a", "b"])
        r.add(1, 2)
        r.add(3, 4)
        assert r.column("b") == [2, 4]

    def test_format_renders_headers_and_rows(self):
        r = ExperimentResult("x", "some title", ["col"], notes="hello")
        r.add(3.14159)
        text = r.format()
        assert "some title" in text
        assert "col" in text
        assert "3.14" in text
        assert "hello" in text

    def test_save(self, tmp_path):
        r = ExperimentResult("x", "t", ["a"])
        r.add(1)
        path = r.save(tmp_path)
        assert path.read_text().startswith("== x: t ==")


class TestRegistry:
    def test_every_figure_and_table_present(self):
        expected = {
            "table1", "table2", "table3", "table4",
            "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
        }
        assert expected <= set(ALL_EXPERIMENTS)

    def test_ablations_present(self):
        assert "ablation_interleaving" in ALL_EXPERIMENTS
        assert "ablation_bpg_timeout" in ALL_EXPERIMENTS
        assert "ablation_pu_count" in ALL_EXPERIMENTS
        assert "ablation_execution_model" in ALL_EXPERIMENTS
        assert "ablation_density" in ALL_EXPERIMENTS

    def test_resilience_present(self):
        assert "resilience" in ALL_EXPERIMENTS


class TestRunAllIsolation:
    def test_failing_driver_isolated(self, monkeypatch, tmp_path):
        import repro.experiments as experiments

        def boom():
            raise RuntimeError("driver exploded")

        def ok():
            return ExperimentResult("ok_exp", "fine", ["v"], rows=[[1]])

        monkeypatch.setattr(experiments, "ALL_EXPERIMENTS",
                            {"boom": boom, "ok_exp": ok})
        out = experiments.run_all(save=False, isolate_errors=True)
        assert set(out) == {"boom", "ok_exp"}
        assert out["boom"].title.startswith("FAILED")
        assert "driver exploded" in out["boom"].rows[0][0]
        assert out["ok_exp"].rows == [[1]]

    def test_failing_driver_raises_without_isolation(self, monkeypatch):
        import repro.experiments as experiments

        def boom():
            raise RuntimeError("driver exploded")

        monkeypatch.setattr(experiments, "ALL_EXPERIMENTS", {"boom": boom})
        with pytest.raises(RuntimeError):
            experiments.run_all(save=False)


class TestResilienceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import resilience

        return resilience.run()

    def test_shape(self, result):
        from repro.experiments.resilience import MACHINE_ORDER, PROFILE_ORDER

        assert len(result.rows) == len(MACHINE_ORDER) * len(PROFILE_ORDER)

    def test_none_rows_retain_everything(self, result):
        for row in result.rows:
            if row[0] == "none":
                assert row[3] == "100.0%"
                assert row[7] == 0  # nothing injected

    def test_faults_never_raise_efficiency(self, result):
        from repro.experiments.resilience import MACHINE_ORDER

        eff = {(row[0], row[1]): row[2] for row in result.rows}
        for machine in MACHINE_ORDER:
            assert eff[("harsh", machine)] <= eff[("none", machine)]


class TestTable1:
    def test_navg_close_to_paper(self):
        result = table1.run()
        for row in result.rows:
            _, measured, paper = row
            assert measured == pytest.approx(paper, rel=0.05)


class TestTable3:
    def test_energy_optimized_512_minimises_power_per_bit(self):
        result = table3.run()
        powers = result.column("Power/bit (mW/bit)")
        targets = result.column("Target")
        bits = result.column("Output bits")
        best = powers.index(min(powers))
        assert targets[best] == "energy-optimized"
        assert bits[best] == 512


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run()

    def test_full_sweep_shape(self, result):
        assert len(result.rows) == 15           # 3 algos x 5 datasets
        assert len(result.headers) == 2 + 16    # 4 groups x 4 sizes

    def test_sweet_spots_match_paper(self, result):
        spots = table4.sweet_spots(result)
        # Section 7.2.3: 4 MB without sharing, 2 MB with sharing.
        assert spots["w/o PG, w/o sharing"] == 4
        assert spots["w/ PG, w/ sharing"] == 2

    def test_sharing_with_pg_wins_everywhere_at_2mb(self, result):
        best = result.column("w/ PG, w/ sharing 2MB")
        base = result.column("w/o PG, w/o sharing 2MB")
        assert all(b > a for a, b in zip(base, best))


class TestFig14:
    def test_sharing_always_helps(self):
        result = fig14.run()
        for row in result.rows:
            ratios = row[1:6]
            assert all(r > 1.0 for r in ratios)

    def test_pr_gains_most(self):
        result = fig14.run()
        means = {row[0]: row[6] for row in result.rows}
        assert means["PR"] > means["CC"]
        assert means["PR"] > means["BFS"]


class TestFig15:
    def test_average_gain_near_paper(self):
        result = fig15.run()
        all_ratios = [r for row in result.rows for r in row[1:6]]
        assert geomean(all_ratios) == pytest.approx(1.53, rel=0.25)

    def test_gating_never_hurts(self):
        result = fig15.run()
        for row in result.rows:
            assert all(r >= 1.0 for r in row[1:6])


class TestFig16:
    @pytest.fixture(scope="class")
    def ratios(self):
        return fig16.opt_ratios()

    def test_opt_vs_dram_several_fold(self, ratios):
        # Paper: 5.90x.
        assert 4.0 < ratios["acc+DRAM"] < 12.0

    def test_opt_vs_sd_about_two(self, ratios):
        # Paper: 2.00x.
        assert 1.5 < ratios["acc+SRAM+DRAM"] < 3.0

    def test_opt_vs_cpu_two_orders(self, ratios):
        # Paper: 145.71x.
        assert 80 < ratios["CPU+DRAM"] < 260

    def test_reram_swap_alone_helps_modestly(self, ratios):
        # acc+ReRAM beats acc+DRAM but by far less than HyVE does.
        gain = ratios["acc+DRAM"] / ratios["acc+ReRAM"]
        assert 1.05 < gain < 2.5

    def test_full_ordering(self, ratios):
        assert (
            ratios["CPU+DRAM"]
            > ratios["acc+DRAM"]
            > ratios["acc+ReRAM"]
            > ratios["acc+SRAM+DRAM"]
            > ratios["acc+HyVE"]
            > 1.0
        )


class TestFig17:
    def test_memory_share_drops_with_each_optimisation(self):
        result = fig17.run()
        shares = {"SD": [], "HyVE": [], "opt": []}
        for row in result.rows:
            shares[row[0]].append(row[6])
        sd = sum(shares["SD"]) / len(shares["SD"])
        hyve = sum(shares["HyVE"]) / len(shares["HyVE"])
        opt = sum(shares["opt"]) / len(shares["opt"])
        assert sd > hyve > opt

    def test_sd_memory_share_near_paper(self):
        result = fig17.run()
        sd_shares = [row[6] for row in result.rows if row[0] == "SD"]
        mean = sum(sd_shares) / len(sd_shares)
        assert mean == pytest.approx(88.62, abs=8.0)  # percent

    def test_memory_energy_reduction(self):
        reductions = fig17.memory_reduction()
        # Paper: 57.57% (HyVE) and 86.17% (opt).
        assert 25 < reductions["HyVE"] < 70
        assert 45 < reductions["opt"] < 95
        assert reductions["opt"] > reductions["HyVE"]


class TestFig18:
    def test_hyve_slightly_slower(self):
        result = fig18.run()
        for row in result.rows:
            ratios = row[1:6]
            assert all(0.7 < r <= 1.0 for r in ratios)

    def test_slowdowns_in_paper_band(self):
        # Paper: 1.9% (BFS) to 15.1% (PR) slowdown.
        result = fig18.run()
        for row in result.rows:
            assert 0.0 < row[7] < 20.0


class TestFig19:
    def test_graphr_preprocessing_several_fold_slower(self):
        result = fig19.run()
        for row in result.rows:
            assert 2.5 < row[1] < 12.0
        values = result.column("GraphR/HyVE")
        assert sum(values) / len(values) == pytest.approx(6.73, rel=0.35)


class TestFig21:
    @pytest.fixture(scope="class")
    def averages(self):
        return fig21.averages()

    def test_hyve_faster(self, averages):
        assert averages["delay"] == pytest.approx(5.12, rel=0.5)

    def test_hyve_less_energy(self, averages):
        assert averages["energy"] == pytest.approx(2.83, rel=0.5)

    def test_edp_order_of_magnitude(self, averages):
        assert averages["edp"] == pytest.approx(17.63, rel=0.6)

    def test_hyve_wins_every_cell(self):
        result = fig21.run()
        for row in result.rows:
            assert row[2] > 1.0  # delay
            assert row[3] > 1.0  # energy
            assert row[4] > 1.0  # EDP


class TestFig12Measured:
    def test_measured_series_included_on_request(self):
        from repro.experiments import fig12

        result = fig12.run(include_measured=True)
        sources = result.column("Source")
        assert "model" in sources and "measured" in sources


class TestResultExports:
    @pytest.fixture
    def result(self):
        r = ExperimentResult("exp", "title", ["name", "value"])
        r.add("a", 1.23456)
        r.add("b", 7)
        return r

    def test_csv(self, result):
        lines = result.to_csv().strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1].startswith("a,")

    def test_save_csv(self, result, tmp_path):
        path = result.save_csv(tmp_path)
        assert path.suffix == ".csv"
        assert "name,value" in path.read_text()

    def test_markdown(self, result):
        md = result.to_markdown()
        assert md.splitlines()[0] == "| name | value |"
        assert "| a | 1.235 |" in md


class TestCheapDriverSchemas:
    """Every cheap driver returns non-empty, well-formed rows."""

    @pytest.mark.parametrize(
        "name",
        ["table1", "table2", "table3", "fig09", "fig12", "fig13",
         "fig15", "fig18", "fig19", "ablation_interleaving",
         "ablation_bpg_timeout"],
    )
    def test_driver(self, name):
        result = ALL_EXPERIMENTS[name]()
        assert result.rows
        assert all(len(row) == len(result.headers) for row in result.rows)
        assert result.format()
