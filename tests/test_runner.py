"""Tests for the edge-centric executor (vectorised vs blocked)."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    PageRank,
    SSSP,
    SpMV,
    clear_run_cache,
    make_algorithm,
    run_blocked,
    run_cached,
    run_vectorized,
)
from repro.errors import ConvergenceError
from repro.graph import rmat


ALGORITHMS = [PageRank, BFS, ConnectedComponents, SSSP, SpMV]


class TestBlockedEquivalence:
    """Algorithm 2's block order computes the same answer (the property
    data sharing relies on)."""

    @pytest.mark.parametrize("factory", ALGORITHMS)
    def test_blocked_matches_vectorized(self, factory, small_rmat):
        vec = run_vectorized(factory(), small_rmat)
        blocked = run_blocked(factory(), small_rmat, num_intervals=8,
                              num_pus=4)
        np.testing.assert_allclose(blocked.values, vec.values)
        assert blocked.iterations == vec.iterations

    def test_blocked_single_pu(self, small_rmat):
        vec = run_vectorized(PageRank(), small_rmat)
        blocked = run_blocked(PageRank(), small_rmat, num_intervals=4,
                              num_pus=1)
        np.testing.assert_allclose(blocked.values, vec.values)

    def test_blocked_p_equals_n(self, small_rmat):
        vec = run_vectorized(BFS(), small_rmat)
        blocked = run_blocked(BFS(), small_rmat, num_intervals=8, num_pus=8)
        np.testing.assert_array_equal(blocked.values, vec.values)


class TestRunMetadata:
    def test_total_edges(self, small_rmat):
        run = run_vectorized(PageRank(iterations=7), small_rmat)
        assert run.total_edges == 7 * small_rmat.num_edges

    def test_active_sources_length(self, small_rmat):
        run = run_vectorized(ConnectedComponents(), small_rmat)
        assert len(run.active_sources) == run.iterations

    def test_pagerank_always_fully_active(self, small_rmat):
        run = run_vectorized(PageRank(), small_rmat)
        streamed = small_rmat.num_vertices
        assert all(a == streamed for a in run.active_sources)

    def test_graph_name_reflects_transform(self, small_rmat):
        run = run_vectorized(ConnectedComponents(), small_rmat)
        assert "sym" in run.graph_name


class TestCache:
    def test_same_algorithm_same_graph_cached(self, small_rmat):
        clear_run_cache()
        a = run_cached(PageRank(), small_rmat)
        b = run_cached(PageRank(), small_rmat)
        assert a is b

    def test_different_parameters_not_conflated(self, small_rmat):
        clear_run_cache()
        a = run_cached(PageRank(iterations=5), small_rmat)
        b = run_cached(PageRank(iterations=10), small_rmat)
        assert a.iterations == 5
        assert b.iterations == 10

    def test_different_roots_not_conflated(self, small_rmat):
        clear_run_cache()
        a = run_cached(BFS(0), small_rmat)
        b = run_cached(BFS(1), small_rmat)
        assert a.values[0] == 0
        assert b.values[1] == 0


class TestCacheKeying:
    """The cache keys on graph *content*, not object identity.

    Regression: the key used to include ``id(graph)``; CPython recycles
    addresses after garbage collection, so a new graph allocated at a
    dead graph's address (with the same name) could be served the stale
    run.  A content fingerprint cannot collide that way.
    """

    def test_equal_content_shares_entry(self):
        clear_run_cache()
        a = rmat(128, 600, seed=7, name="same")
        b = rmat(128, 600, seed=7, name="same")
        assert a is not b
        assert a.fingerprint() == b.fingerprint()
        assert run_cached(PageRank(), a) is run_cached(PageRank(), b)

    def test_different_content_same_name_not_conflated(self):
        clear_run_cache()
        a = rmat(128, 600, seed=7, name="same")
        b = rmat(128, 600, seed=8, name="same")
        ra = run_cached(PageRank(), a)
        rb = run_cached(PageRank(), b)
        assert ra is not rb
        assert not np.array_equal(ra.values, rb.values)

    def test_survives_object_reuse(self):
        """A fresh graph must never see a dead graph's cached run."""
        import gc

        clear_run_cache()
        results = []
        for seed in (1, 2):
            graph = rmat(128, 600, seed=seed, name="recycled")
            results.append(run_cached(PageRank(), graph).values.copy())
            del graph
            gc.collect()  # encourage address reuse for the next graph
        assert not np.array_equal(results[0], results[1])

    def test_fingerprint_distinguishes_weights(self):
        g = rmat(64, 300, seed=3)
        assert g.fingerprint() != g.with_unit_weights().fingerprint()


class TestConvergenceGuard:
    def test_iteration_cap_enforced(self, small_rmat):
        algo = ConnectedComponents()
        algo.max_iterations = 0
        with pytest.raises(ConvergenceError):
            run_vectorized(algo, small_rmat)


class TestFactory:
    @pytest.mark.parametrize(
        "name,expected",
        [("pr", "PR"), ("BFS", "BFS"), ("cc", "CC"), ("sssp", "SSSP"),
         ("SpMV", "SpMV")],
    )
    def test_make_algorithm(self, name, expected):
        assert make_algorithm(name).name == expected

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_algorithm("dijkstra")
