"""Tests for the generic design-space sweep helper."""

import pytest

from repro.algorithms import PageRank
from repro.arch.config import Workload
from repro.arch.sweep import best_point, pareto_front, sweep
from repro.errors import ConfigError
from repro.graph import rmat
from repro.units import MB


@pytest.fixture(scope="module")
def workload():
    graph = rmat(2048, 16000, seed=97, name="sweep")
    return Workload(graph, reported_vertices=2_048_000,
                    reported_edges=16_000_000)


class TestSweep:
    def test_sram_axis(self, workload):
        points = sweep("sram_bits", [2 * MB, 4 * MB, 8 * MB],
                       PageRank, workload)
        assert len(points) == 3
        assert {p.value for p in points} == {2 * MB, 4 * MB, 8 * MB}
        assert all(p.report.total_energy > 0 for p in points)

    def test_boolean_axis(self, workload):
        points = sweep("data_sharing", [True, False], PageRank, workload)
        on, off = points
        assert on.report.mteps_per_watt > off.report.mteps_per_watt

    def test_labels_carry_value(self, workload):
        points = sweep("num_pus", [4, 8], PageRank, workload)
        assert points[0].config.label == "num_pus=4"

    def test_accepts_bare_graph(self):
        graph = rmat(256, 1000, seed=1)
        points = sweep("num_pus", [2], PageRank, graph)
        assert len(points) == 1

    def test_rejects_unknown_field(self, workload):
        with pytest.raises(ConfigError):
            sweep("sram_banks", [1], PageRank, workload)

    def test_rejects_empty_values(self, workload):
        with pytest.raises(ConfigError):
            sweep("num_pus", [], PageRank, workload)


class TestSelection:
    def test_best_point(self, workload):
        points = sweep("sram_bits", [2 * MB, 16 * MB], PageRank, workload)
        best = best_point(points)
        assert best.mteps_per_watt == max(
            p.mteps_per_watt for p in points
        )

    def test_best_rejects_empty(self):
        with pytest.raises(ConfigError):
            best_point([])

    def test_pareto_front_nonempty_subset(self, workload):
        points = sweep("sram_bits", [2 * MB, 4 * MB, 8 * MB, 16 * MB],
                       PageRank, workload)
        front = pareto_front(points)
        assert 1 <= len(front) <= len(points)
        # Best-efficiency point is never dominated on energy.
        best = min(points, key=lambda p: p.report.total_energy)
        assert best in front
