"""Tests for the generic design-space sweep helper."""

import json

import pytest

from repro.algorithms import PageRank
from repro.arch.config import Workload
from repro.arch.sweep import (
    SweepPolicy,
    best_point,
    pareto_front,
    successful_points,
    sweep,
)
from repro.errors import ConfigError, SweepPointError
from repro.graph import rmat
from repro.units import MB


@pytest.fixture(scope="module")
def workload():
    graph = rmat(2048, 16000, seed=97, name="sweep")
    return Workload(graph, reported_vertices=2_048_000,
                    reported_edges=16_000_000)


class TestSweep:
    def test_sram_axis(self, workload):
        points = sweep("sram_bits", [2 * MB, 4 * MB, 8 * MB],
                       PageRank, workload)
        assert len(points) == 3
        assert {p.value for p in points} == {2 * MB, 4 * MB, 8 * MB}
        assert all(p.report.total_energy > 0 for p in points)

    def test_boolean_axis(self, workload):
        points = sweep("data_sharing", [True, False], PageRank, workload)
        on, off = points
        assert on.report.mteps_per_watt > off.report.mteps_per_watt

    def test_labels_carry_value(self, workload):
        points = sweep("num_pus", [4, 8], PageRank, workload)
        assert points[0].config.label == "num_pus=4"

    def test_accepts_bare_graph(self):
        graph = rmat(256, 1000, seed=1)
        points = sweep("num_pus", [2], PageRank, graph)
        assert len(points) == 1

    def test_rejects_unknown_field(self, workload):
        with pytest.raises(ConfigError):
            sweep("sram_banks", [1], PageRank, workload)

    def test_rejects_empty_values(self, workload):
        with pytest.raises(ConfigError):
            sweep("num_pus", [], PageRank, workload)


class TestRobustSweep:
    """Timeout / retry / error isolation / checkpointing."""

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            SweepPolicy(timeout=0)
        with pytest.raises(ConfigError):
            SweepPolicy(retries=-1)
        with pytest.raises(ConfigError):
            SweepPolicy(backoff=-0.5)

    def test_failing_point_kills_strict_sweep(self, workload):
        with pytest.raises(SweepPointError):
            sweep("num_pus", [4, -1], PageRank, workload)

    def test_failing_point_isolated(self, workload):
        policy = SweepPolicy(isolate_errors=True)
        points = sweep("num_pus", [4, -1, 8], PageRank, workload,
                       policy=policy)
        assert len(points) == 3
        ok = successful_points(points)
        assert [p.value for p in ok] == [4, 8]
        failed = points[1]
        assert not failed.ok
        assert failed.report is None
        assert "ConfigError" in failed.error
        with pytest.raises(SweepPointError):
            _ = failed.mteps_per_watt
        # Selection helpers skip the failure.
        assert best_point(points).ok
        assert all(p.ok for p in pareto_front(points))

    def test_timeout_counts_as_failure(self):
        # Fresh graph: a cold run cache keeps the evaluation well past
        # the timeout (a warm one can finish inside a GIL slice).
        graph = rmat(2048, 16000, seed=31, name="sweep-timeout")
        policy = SweepPolicy(timeout=1e-4, isolate_errors=True)
        points = sweep("num_pus", [4], PageRank, graph, policy=policy)
        assert not points[0].ok
        assert "timeout" in points[0].error

    def test_retries_consumed(self, workload):
        calls = []

        def exploding_factory():
            calls.append(1)
            raise RuntimeError("flaky")

        policy = SweepPolicy(retries=2, backoff=0.0, isolate_errors=True)
        points = sweep("num_pus", [4], exploding_factory, workload,
                       policy=policy)
        assert points[0].attempts == 3
        assert len(calls) == 3
        assert "RuntimeError" in points[0].error

    def test_retry_then_success(self, workload):
        attempts = []

        def flaky_factory():
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("transient")
            return PageRank()

        policy = SweepPolicy(retries=2, backoff=0.0)
        points = sweep("num_pus", [4], flaky_factory, workload,
                       policy=policy)
        assert points[0].ok
        assert points[0].attempts == 2

    def test_checkpoint_resume(self, workload, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        policy = SweepPolicy(isolate_errors=True, checkpoint_path=ckpt)
        first = sweep("num_pus", [4, -1, 8], PageRank, workload,
                      policy=policy)
        lines = [json.loads(l) for l in ckpt.read_text().splitlines()]
        assert len(lines) == 3
        assert sum(1 for l in lines if l["report"] is not None) == 2
        # Resume: successful points come from the checkpoint verbatim,
        # the failed point is re-attempted (and recorded again).
        second = sweep("num_pus", [4, -1, 8], PageRank, workload,
                       policy=policy)
        assert second[0].report.to_dict() == first[0].report.to_dict()
        assert second[2].report.to_dict() == first[2].report.to_dict()
        assert not second[1].ok
        assert len(ckpt.read_text().splitlines()) == 4

    def test_corrupt_checkpoint_rejected(self, workload, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        ckpt.write_text("not json\n")
        policy = SweepPolicy(checkpoint_path=ckpt)
        with pytest.raises(ConfigError):
            sweep("num_pus", [4], PageRank, workload, policy=policy)

    def test_empty_selection_after_failures(self, workload):
        policy = SweepPolicy(isolate_errors=True)
        points = sweep("num_pus", [-1, -2], PageRank, workload,
                       policy=policy)
        assert not successful_points(points)
        with pytest.raises(ConfigError):
            best_point(points)


class TestSelection:
    def test_best_point(self, workload):
        points = sweep("sram_bits", [2 * MB, 16 * MB], PageRank, workload)
        best = best_point(points)
        assert best.mteps_per_watt == max(
            p.mteps_per_watt for p in points
        )

    def test_best_rejects_empty(self):
        with pytest.raises(ConfigError):
            best_point([])

    def test_pareto_front_nonempty_subset(self, workload):
        points = sweep("sram_bits", [2 * MB, 4 * MB, 8 * MB, 16 * MB],
                       PageRank, workload)
        front = pareto_front(points)
        assert 1 <= len(front) <= len(points)
        # Best-efficiency point is never dominated on energy.
        best = min(points, key=lambda p: p.report.total_energy)
        assert best in front
