"""Tests for edge-centric PageRank."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import PageRank, run_vectorized
from repro.graph import Graph, cycle, star


class TestCorrectness:
    def test_matches_networkx(self, small_rmat):
        g = small_rmat.deduplicated()
        run = run_vectorized(PageRank(iterations=80), g)
        reference = nx.pagerank(g.to_networkx(), alpha=0.85, max_iter=200)
        for v in range(g.num_vertices):
            assert run.values[v] == pytest.approx(reference[v], abs=1e-5)

    def test_cycle_is_uniform(self):
        run = run_vectorized(PageRank(), cycle(10))
        np.testing.assert_allclose(run.values, 0.1, rtol=1e-9)

    def test_hub_of_star_has_low_rank(self):
        run = run_vectorized(PageRank(iterations=30), star(20))
        # All rank flows away from the hub.
        assert run.values[0] < run.values[1]

    def test_sums_to_one(self, medium_rmat):
        run = run_vectorized(PageRank(), medium_rmat)
        assert run.values.sum() == pytest.approx(1.0, abs=1e-9)

    def test_dangling_mass_redistributed(self):
        # Vertex 2 has no out-edges.
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        run = run_vectorized(PageRank(iterations=60), g)
        assert run.values.sum() == pytest.approx(1.0, abs=1e-9)
        assert (run.values > 0).all()

    def test_all_dangling(self):
        g = Graph.empty(4)
        run = run_vectorized(PageRank(iterations=5), g)
        np.testing.assert_allclose(run.values, 0.25)


class TestConfiguration:
    def test_fixed_iteration_count(self, small_rmat):
        run = run_vectorized(PageRank(iterations=10), small_rmat)
        assert run.iterations == 10

    def test_paper_default_is_ten_iterations(self):
        assert PageRank().iterations == 10

    def test_vertex_record_is_wide(self):
        assert PageRank().vertex_bits == 64

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.0)
        with pytest.raises(ValueError):
            PageRank(damping=-0.1)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            PageRank(iterations=0)

    def test_zero_damping_is_uniform(self, small_rmat):
        run = run_vectorized(PageRank(damping=0.0, iterations=3), small_rmat)
        np.testing.assert_allclose(
            run.values, 1.0 / small_rmat.num_vertices
        )

    def test_edge_bits_unweighted(self):
        assert PageRank().edge_bits == 64


class TestTolerance:
    def test_tolerance_mode_converges(self, small_rmat):
        from repro.algorithms import run_vectorized

        run = run_vectorized(PageRank(tolerance=1e-10), small_rmat)
        reference = run_vectorized(PageRank(iterations=100), small_rmat)
        np.testing.assert_allclose(run.values, reference.values, atol=1e-8)

    def test_tighter_tolerance_more_iterations(self, small_rmat):
        from repro.algorithms import run_vectorized

        loose = run_vectorized(PageRank(tolerance=1e-3), small_rmat)
        tight = run_vectorized(PageRank(tolerance=1e-12), small_rmat)
        assert tight.iterations > loose.iterations

    def test_rejects_non_positive_tolerance(self):
        with pytest.raises(ValueError):
            PageRank(tolerance=0.0)

    def test_tolerance_runs_not_conflated_in_cache(self, small_rmat):
        from repro.algorithms import clear_run_cache, run_cached

        clear_run_cache()
        fixed = run_cached(PageRank(iterations=5), small_rmat)
        tol = run_cached(PageRank(iterations=5, tolerance=1e-9), small_rmat)
        assert fixed.iterations != tol.iterations
