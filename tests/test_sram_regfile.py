"""Tests for the on-chip SRAM and register-file models."""

import pytest

from repro.errors import ConfigError
from repro.memory import AccessKind, AccessPattern, OnChipSRAM, RegisterFile
from repro.units import MB, PJ, PS

R, W = AccessKind.READ, AccessKind.WRITE
SEQ, RND = AccessPattern.SEQUENTIAL, AccessPattern.RANDOM


class TestOnChipSRAM:
    def test_pattern_independent(self):
        sram = OnChipSRAM()
        assert sram.access_cost(R, SEQ) == sram.access_cost(R, RND)

    def test_paper_2mb_point(self):
        sram = OnChipSRAM(2 * MB)
        assert sram.access_cost(R, RND).energy == pytest.approx(23.84 * PJ)
        assert sram.access_cost(W, RND).latency == pytest.approx(557.089 * PS)

    def test_word_access_width(self):
        assert OnChipSRAM().access_bits == 32

    def test_bigger_is_slower_and_leakier(self):
        small = OnChipSRAM(2 * MB)
        big = OnChipSRAM(16 * MB)
        assert big.access_cost(R, RND).latency > small.access_cost(R, RND).latency
        assert big.standby_power > small.standby_power

    def test_fits(self):
        sram = OnChipSRAM(2 * MB)
        assert sram.fits(1 * MB)
        assert not sram.fits(3 * MB)

    def test_capacity_mb(self):
        assert OnChipSRAM(4 * MB).capacity_mb == pytest.approx(4.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            OnChipSRAM(0)


class TestRegisterFile:
    def test_paper_quoted_costs(self):
        rf = RegisterFile()
        read = rf.access_cost(R, RND)
        write = rf.access_cost(W, RND)
        assert read.energy == pytest.approx(1.227 * PJ)
        assert read.latency == pytest.approx(11.976 * PS)
        assert write.energy == pytest.approx(1.209 * PJ)
        assert write.latency == pytest.approx(10.563 * PS)

    def test_much_cheaper_than_sram(self):
        rf = RegisterFile().access_cost(R, RND).energy
        sram = OnChipSRAM().access_cost(R, RND).energy
        assert sram / rf > 10

    def test_leakage_scales_with_capacity(self):
        small = RegisterFile(1024)
        big = RegisterFile(8 * 1024)
        assert big.standby_power == pytest.approx(8 * small.standby_power)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            RegisterFile(0)
