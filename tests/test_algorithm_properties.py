"""Property-based tests on algorithm invariants (hypothesis)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    PageRank,
    UNREACHED,
    run_blocked,
    run_vectorized,
)
from repro.graph import Graph


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return Graph(n, np.array(src, dtype=np.int64),
                 np.array(dst, dtype=np.int64))


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_pagerank_is_a_distribution(g):
    run = run_vectorized(PageRank(iterations=5), g)
    assert abs(run.values.sum() - 1.0) < 1e-9
    assert (run.values >= 0).all()


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_bfs_levels_respect_edges(g):
    run = run_vectorized(BFS(0), g)
    levels = run.values
    for s, d in g.edges():
        if levels[s] != UNREACHED:
            assert levels[d] <= levels[s] + 1
    assert levels[0] == 0


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_bfs_matches_networkx(g):
    run = run_vectorized(BFS(0), g)
    ref = nx.single_source_shortest_path_length(g.to_networkx(), 0)
    for v in range(g.num_vertices):
        assert run.values[v] == ref.get(v, UNREACHED)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_cc_labels_are_component_minima(g):
    run = run_vectorized(ConnectedComponents(), g)
    for component in nx.weakly_connected_components(g.to_networkx()):
        labels = {int(run.values[v]) for v in component}
        assert labels == {min(component)}


@given(graphs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_blocked_equals_vectorized_for_any_partitioning(g, num_pus):
    p = num_pus * max(1, min(3, g.num_vertices // num_pus))
    if p > g.num_vertices:
        p = num_pus
    if p > g.num_vertices:
        return  # degenerate: fewer vertices than PUs
    vec = run_vectorized(PageRank(iterations=3), g)
    blocked = run_blocked(PageRank(iterations=3), g, p, num_pus)
    np.testing.assert_allclose(blocked.values, vec.values)
