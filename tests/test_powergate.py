"""Tests for the bank-level power-gating model (Section 4.1)."""

import pytest

from repro.errors import ConfigError
from repro.memory import BankPowerGating, PowerGatingPolicy
from repro.units import GBIT, NJ, NS, US


def plan(policy=None, num_banks=8, active=1, streamed=4 * GBIT,
         bank_capacity=GBIT // 2, duration=0.1):
    gater = BankPowerGating(policy or PowerGatingPolicy())
    return gater.plan(num_banks, active, streamed, bank_capacity, duration)


class TestPolicy:
    def test_defaults(self):
        policy = PowerGatingPolicy()
        assert policy.enabled
        assert policy.idle_timeout == pytest.approx(1 * US)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            PowerGatingPolicy(idle_timeout=-1.0)
        with pytest.raises(ConfigError):
            PowerGatingPolicy(wake_energy=-1.0)


class TestPlan:
    def test_disabled_gates_nothing(self):
        report = plan(PowerGatingPolicy(enabled=False))
        assert report.gated_fraction == 0.0
        assert report.transitions == 0
        assert report.overhead_energy == 0.0

    def test_sequential_stream_gates_most_banks(self):
        report = plan()
        assert report.gated_fraction > 0.8

    def test_all_banks_active_gates_nothing(self):
        # Bank interleaving: every bank busy.
        report = plan(active=8)
        assert report.gated_fraction == 0.0

    def test_transitions_count_bank_crossings(self):
        report = plan(streamed=4 * GBIT, bank_capacity=GBIT)
        assert report.transitions == 4

    def test_no_stream_no_transitions(self):
        report = plan(streamed=0)
        assert report.transitions == 0
        assert report.overhead_energy == 0.0

    def test_overhead_energy_scales_with_transitions(self):
        policy = PowerGatingPolicy(wake_energy=1 * NJ)
        few = plan(policy, streamed=2 * GBIT, bank_capacity=GBIT)
        many = plan(policy, streamed=8 * GBIT, bank_capacity=GBIT)
        assert many.overhead_energy == pytest.approx(4 * few.overhead_energy)

    def test_long_timeout_reduces_gated_fraction(self):
        short = plan(PowerGatingPolicy(idle_timeout=0.1 * US))
        long = plan(PowerGatingPolicy(idle_timeout=1000 * US))
        assert long.gated_fraction < short.gated_fraction

    def test_gated_fraction_bounded(self):
        # Timeout so long nothing ever gates; fraction floors at 0.
        report = plan(PowerGatingPolicy(idle_timeout=1e6 * US))
        assert 0.0 <= report.gated_fraction <= 1.0

    def test_overhead_time_small(self):
        policy = PowerGatingPolicy(wake_latency=50 * NS)
        report = plan(policy)
        # Pre-waking hides most of the wake latency.
        assert report.overhead_time < report.transitions * 50 * NS

    def test_rejects_bad_inputs(self):
        gater = BankPowerGating()
        with pytest.raises(ConfigError):
            gater.plan(0, 1, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            gater.plan(8, 9, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            gater.plan(8, 1, -1.0, 1.0, 1.0)
        with pytest.raises(ConfigError):
            gater.plan(8, 1, 1.0, 0.0, 1.0)
