"""Property-based tests on the graph substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    Graph,
    HashPlacement,
    IntervalBlockPartition,
    interval_bounds,
    rmat,
)
from repro.graph.stats import (
    average_edges_per_nonempty_block,
    nonempty_block_count,
)


@st.composite
def graphs(draw, max_vertices=64, max_edges=200):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return Graph(n, np.array(src, dtype=np.int64),
                 np.array(dst, dtype=np.int64))


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_degree_sums_equal_edge_count(g):
    assert g.out_degrees().sum() == g.num_edges
    assert g.in_degrees().sum() == g.num_edges


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_reverse_swaps_degree_distributions(g):
    rev = g.reverse()
    np.testing.assert_array_equal(rev.out_degrees(), g.in_degrees())
    np.testing.assert_array_equal(rev.in_degrees(), g.out_degrees())


@given(graphs(), st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_partition_is_exhaustive_and_disjoint(g, p):
    p = min(p, g.num_vertices)
    part = IntervalBlockPartition.build(g, p)
    indices = [
        part.block_edge_indices(i, j) for i in range(p) for j in range(p)
    ]
    flat = np.concatenate(indices) if indices else np.empty(0)
    assert sorted(flat.tolist()) == list(range(g.num_edges))


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=100, deadline=None)
def test_interval_bounds_cover_everything(n, p):
    bounds = interval_bounds(n, p)
    sizes = np.diff(bounds)
    assert sizes.sum() == n
    assert (sizes >= 0).all()
    # Sizes differ by at most one (balanced split).
    if n > 0:
        assert sizes.max() - sizes.min() <= 1


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_hash_placement_preserves_graph_statistics(g):
    placement = HashPlacement.for_graph(g)
    hashed = placement.apply(g)
    assert hashed.num_edges == g.num_edges
    # The degree *multiset* is invariant under relabeling.
    assert sorted(hashed.out_degrees().tolist()) == sorted(
        g.out_degrees().tolist()
    )


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_navg_definition(g):
    blocks = nonempty_block_count(g)
    navg = average_edges_per_nonempty_block(g)
    if g.num_edges == 0:
        assert navg == 0.0
    else:
        assert blocks >= 1
        assert navg * blocks == pytest.approx(g.num_edges)
        assert navg >= 1.0


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_dedup_is_idempotent(g):
    once = g.deduplicated()
    twice = once.deduplicated()
    assert once.num_edges == twice.num_edges


@given(st.integers(min_value=1, max_value=512),
       st.integers(min_value=0, max_value=512),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=30, deadline=None)
def test_rmat_always_valid(n, m, seed):
    g = rmat(n, m, seed=seed)
    assert g.num_vertices == n
    assert g.num_edges == m
    if m:
        assert g.src.max() < n and g.dst.max() < n
