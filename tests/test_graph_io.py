"""Tests for graph I/O and the Section 3.4 serialised layout."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph, IntervalBlockPartition, io


class TestEdgeListValidation:
    """Malformed edge-list inputs fail with GraphError + line number."""

    def _load(self, tmp_path, text):
        path = tmp_path / "bad.txt"
        path.write_text(text)
        return io.load_edge_list(path)

    def test_non_integer_vertex_id(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:2.*integers"):
            self._load(tmp_path, "0 1\n2 banana\n")

    def test_float_vertex_id(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:1"):
            self._load(tmp_path, "0.5 1\n")

    def test_negative_vertex_id(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:2.*negative"):
            self._load(tmp_path, "0 1\n-3 2\n")

    def test_nan_weight(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:1.*finite"):
            self._load(tmp_path, "0 1 nan\n")

    def test_inf_weight(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:2.*finite"):
            self._load(tmp_path, "0 1 2.5\n1 0 inf\n")

    def test_malformed_weight(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:1.*weight"):
            self._load(tmp_path, "0 1 heavy\n")

    def test_inconsistent_columns(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:2.*column"):
            self._load(tmp_path, "0 1\n1 2 3.5\n")

    def test_too_many_columns(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:1"):
            self._load(tmp_path, "0 1 2 3\n")

    def test_malformed_vertex_header(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:1.*vertex-count"):
            self._load(tmp_path, "# vertices: many\n0 1\n")

    def test_negative_vertex_header(self, tmp_path):
        with pytest.raises(GraphError, match=r"bad\.txt:1.*negative"):
            self._load(tmp_path, "# vertices: -4\n")

    def test_blank_lines_and_comments_ok(self, tmp_path):
        g = self._load(tmp_path, "# a comment\n\n0 1\n\n1 2\n")
        assert g.num_edges == 2
        assert g.num_vertices == 3


class TestEdgeListText:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.txt"
        io.save_edge_list(tiny_graph, path)
        loaded = io.load_edge_list(path)
        assert loaded.num_vertices == tiny_graph.num_vertices
        np.testing.assert_array_equal(loaded.src, tiny_graph.src)
        np.testing.assert_array_equal(loaded.dst, tiny_graph.dst)

    def test_round_trip_weighted(self, weighted_graph, tmp_path):
        path = tmp_path / "w.txt"
        io.save_edge_list(weighted_graph, path)
        loaded = io.load_edge_list(path)
        assert loaded.is_weighted
        np.testing.assert_allclose(loaded.weights, weighted_graph.weights)

    def test_vertex_count_from_header(self, tmp_path):
        path = tmp_path / "h.txt"
        path.write_text("# vertices: 100\n0\t1\n")
        assert io.load_edge_list(path).num_vertices == 100

    def test_vertex_count_inferred(self, tmp_path):
        path = tmp_path / "i.txt"
        path.write_text("0 7\n3 2\n")
        assert io.load_edge_list(path).num_vertices == 8

    def test_explicit_vertex_count_wins(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("# vertices: 5\n0 1\n")
        assert io.load_edge_list(path, num_vertices=50).num_vertices == 50

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n\n0 1\n# more\n1 0\n")
        assert io.load_edge_list(path).num_edges == 2

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            io.load_edge_list(path)

    def test_rejects_partial_weights(self, tmp_path):
        path = tmp_path / "pw.txt"
        path.write_text("0 1 2.5\n1 0\n")
        with pytest.raises(GraphError):
            io.load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        g = io.load_edge_list(path)
        assert g.num_edges == 0


class TestBinary:
    def test_round_trip(self, medium_rmat, tmp_path):
        path = tmp_path / "g.npz"
        io.save_binary(medium_rmat, path)
        loaded = io.load_binary(path)
        assert loaded.name == medium_rmat.name
        np.testing.assert_array_equal(loaded.src, medium_rmat.src)
        np.testing.assert_array_equal(loaded.dst, medium_rmat.dst)

    def test_round_trip_weighted(self, weighted_graph, tmp_path):
        path = tmp_path / "w.npz"
        io.save_binary(weighted_graph, path)
        loaded = io.load_binary(path)
        np.testing.assert_allclose(loaded.weights, weighted_graph.weights)

    def test_round_trip_empty(self, tmp_path):
        path = tmp_path / "e.npz"
        io.save_binary(Graph.empty(7), path)
        loaded = io.load_binary(path)
        assert loaded.num_vertices == 7
        assert loaded.num_edges == 0


class TestSerializedLayout:
    def test_interval_record_shape(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        values = np.arange(8)
        record = io.serialize_interval(p, 1, values)
        # [index, count, value, value]
        assert record.tolist() == [1, 2, 2, 3]

    def test_interval_round_trip(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        values = np.arange(8) * 10
        record = io.serialize_interval(p, 2, values)
        index, out = io.deserialize_interval(record)
        assert index == 2
        assert out.tolist() == [40, 50]

    def test_interval_rejects_wrong_value_count(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        with pytest.raises(GraphError):
            io.serialize_interval(p, 0, np.arange(5))

    def test_interval_rejects_truncated_record(self):
        with pytest.raises(GraphError):
            io.deserialize_interval(np.array([0, 5, 1], dtype=np.int32))

    def test_block_record_layout(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        record = io.serialize_block(p, 3, 0)
        # Header: [src interval, dst interval, count], then pairs.
        assert record[0] == 3 and record[1] == 0 and record[2] == 2

    def test_block_round_trip(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        record = io.serialize_block(p, 1, 2)
        i, j, src, dst = io.deserialize_block(record)
        assert (i, j) == (1, 2)
        assert set(zip(src.tolist(), dst.tolist())) == {(2, 4), (3, 4)}

    def test_block_rejects_truncated(self):
        with pytest.raises(GraphError):
            io.deserialize_block(np.array([0, 0, 3, 1, 2], dtype=np.int32))

    def test_graph_round_trip(self, medium_rmat):
        p = IntervalBlockPartition.build(medium_rmat, 8)
        image = io.serialize_graph(p)
        rebuilt = io.deserialize_graph(image, medium_rmat.num_vertices)
        assert rebuilt.num_edges == medium_rmat.num_edges
        # Same multiset of edges (order differs: block-major).
        orig = sorted(zip(medium_rmat.src.tolist(), medium_rmat.dst.tolist()))
        new = sorted(zip(rebuilt.src.tolist(), rebuilt.dst.tolist()))
        assert orig == new

    def test_empty_graph_image(self):
        p = IntervalBlockPartition.build(Graph.empty(4), 2)
        image = io.serialize_graph(p)
        rebuilt = io.deserialize_graph(image, 4)
        assert rebuilt.num_edges == 0

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(GraphError):
            io.deserialize_graph(np.array([1, 2], dtype=np.int32), 4)
