"""Shared fixtures for the HyVE reproduction test suite."""

from __future__ import annotations

import os
import tempfile

# Hermetic run cache: point the persistent store at a per-session tmp
# directory *before* repro imports, so tests neither read a developer's
# warm ~/.cache/hyve-repro nor leave entries behind.  An explicitly
# exported REPRO_CACHE_DIR wins (CI uses this to share a warm cache).
os.environ.setdefault(
    "REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-test-cache-")
)

import numpy as np
import pytest

from repro.arch.config import Workload
from repro.graph import Graph, erdos_renyi, rmat

#: The suite-wide RNG seed.  Tests that need their own stream derive it
#: through :func:`seeded_rng` (or the ``rng`` fixture) instead of
#: calling ``np.random.default_rng`` with ad-hoc literals, so every
#: random input in the suite is reachable from one place.
TEST_SEED = 2026


def seeded_rng(seed: int = TEST_SEED) -> np.random.Generator:
    """The one sanctioned way to build a test RNG."""
    return np.random.default_rng(seed)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh suite-seeded generator per test."""
    return seeded_rng()


@pytest.fixture
def tiny_graph() -> Graph:
    """The 8-vertex example graph of Fig. 1."""
    edges = [
        (1, 0), (0, 7),
        (2, 3), (2, 4), (3, 4), (3, 7),
        (4, 1), (4, 5),
        (6, 2), (6, 0), (7, 1),
    ]
    return Graph.from_edges(8, edges, name="fig1")


@pytest.fixture
def small_rmat() -> Graph:
    return rmat(256, 1024, seed=11, name="small-rmat")


@pytest.fixture
def medium_rmat() -> Graph:
    return rmat(2048, 16384, seed=12, name="medium-rmat")


@pytest.fixture
def random_graph() -> Graph:
    return erdos_renyi(300, 1500, seed=13, name="uniform")


@pytest.fixture
def weighted_graph(small_rmat) -> Graph:
    # Seed 5 (not TEST_SEED) keeps the historical weight stream the
    # golden expectations were derived from.
    rng = seeded_rng(5)
    return small_rmat.with_weights(
        rng.uniform(1.0, 9.0, size=small_rmat.num_edges)
    )


@pytest.fixture(scope="session")
def lj_workload() -> Workload:
    """A paper-scale workload (cached for the whole session)."""
    return Workload.from_dataset("LJ")


@pytest.fixture(scope="session")
def yt_workload() -> Workload:
    return Workload.from_dataset("YT")
