"""Tests for the accelerator machine model (fold of counts into energy)."""

import pytest

from repro.algorithms import BFS, ConnectedComponents, PageRank
from repro.arch.config import HyVEConfig, Workload
from repro.arch.machine import AcceleratorMachine, make_machine
from repro.arch.report import EDGE_MEMORY, EDGE_MEMORY_BG
from repro.errors import ConfigError
from repro.memory.powergate import PowerGatingPolicy


class TestRunInterface:
    def test_accepts_bare_graph(self, small_rmat):
        result = AcceleratorMachine().run(PageRank(), small_rmat)
        assert result.report.total_energy > 0
        assert result.report.time > 0

    def test_returns_algorithm_values(self, small_rmat):
        result = AcceleratorMachine().run(PageRank(), small_rmat)
        assert result.values.sum() == pytest.approx(1.0, abs=1e-9)

    def test_report_metadata(self, lj_workload):
        report = AcceleratorMachine().run(PageRank(), lj_workload).report
        assert report.machine == "acc+HyVE-opt"
        assert report.algorithm == "PR"
        assert report.graph == "LJ"
        assert report.iterations == 10

    def test_run_counts_exposed(self, lj_workload):
        counts = AcceleratorMachine().run_counts(PageRank(), lj_workload)
        assert counts.num_intervals % counts.num_pus == 0


class TestEnergyAccounting:
    def test_all_components_non_negative(self, lj_workload):
        report = AcceleratorMachine().run(PageRank(), lj_workload).report
        for component, value in report.energy.items():
            assert value >= 0, component

    def test_breakdown_sums_to_one(self, lj_workload):
        report = AcceleratorMachine().run(BFS(), lj_workload).report
        assert sum(report.breakdown().values()) == pytest.approx(1.0)

    def test_memory_plus_logic_is_total(self, lj_workload):
        report = AcceleratorMachine().run(PageRank(), lj_workload).report
        assert report.memory_energy + report.logic_energy == pytest.approx(
            report.total_energy
        )

    def test_mteps_per_watt_consistent(self, lj_workload):
        report = AcceleratorMachine().run(PageRank(), lj_workload).report
        expected = report.edges_traversed / report.total_energy / 1e6
        assert report.mteps_per_watt == pytest.approx(expected)


class TestDesignDirections:
    """The qualitative orderings every figure rests on."""

    def test_reram_edges_cut_edge_memory_energy(self, lj_workload):
        hyve = make_machine("acc+HyVE").run(PageRank(), lj_workload).report
        sd = make_machine("acc+SRAM+DRAM").run(PageRank(), lj_workload).report
        assert hyve.energy[EDGE_MEMORY] < sd.energy[EDGE_MEMORY]

    def test_power_gating_cuts_edge_background(self, lj_workload):
        opt = make_machine("acc+HyVE-opt").run(PageRank(), lj_workload).report
        plain = make_machine("acc+HyVE").run(PageRank(), lj_workload).report
        assert opt.energy[EDGE_MEMORY_BG] < 0.2 * plain.energy[EDGE_MEMORY_BG]

    def test_power_gating_never_hurts_efficiency(self, yt_workload):
        opt = make_machine("acc+HyVE-opt").run(BFS(), yt_workload).report
        plain = make_machine("acc+HyVE").run(BFS(), yt_workload).report
        assert opt.mteps_per_watt > plain.mteps_per_watt

    def test_machine_ordering_on_pagerank(self, lj_workload):
        effs = {
            name: make_machine(name).run(PageRank(), lj_workload)
            .report.mteps_per_watt
            for name in (
                "acc+DRAM", "acc+ReRAM", "acc+SRAM+DRAM", "acc+HyVE",
                "acc+HyVE-opt",
            )
        }
        assert (
            effs["acc+DRAM"]
            < effs["acc+ReRAM"]
            < effs["acc+SRAM+DRAM"]
            < effs["acc+HyVE"]
            < effs["acc+HyVE-opt"]
        )

    def test_hyve_slightly_slower_than_sd(self, lj_workload):
        hyve = make_machine("acc+HyVE").run(PageRank(), lj_workload).report
        sd = make_machine("acc+SRAM+DRAM").run(PageRank(), lj_workload).report
        assert 0.7 < sd.time / hyve.time < 1.0

    def test_sharing_reduces_offchip_time(self, lj_workload):
        shared = AcceleratorMachine(
            HyVEConfig(label="s", power_gating=PowerGatingPolicy(enabled=False))
        ).run(PageRank(), lj_workload).report
        unshared = AcceleratorMachine(
            HyVEConfig(
                label="u",
                data_sharing=False,
                power_gating=PowerGatingPolicy(enabled=False),
            )
        ).run(PageRank(), lj_workload).report
        assert shared.time < unshared.time
        assert shared.total_energy < unshared.total_energy


class TestScaling:
    def test_energy_scales_with_workload_size(self, small_rmat):
        machine = AcceleratorMachine()
        small = machine.run(PageRank(), Workload(small_rmat)).report
        scaled = machine.run(
            PageRank(),
            Workload(
                small_rmat,
                reported_vertices=small_rmat.num_vertices * 100,
                reported_edges=small_rmat.num_edges * 100,
            ),
        ).report
        assert scaled.edges_traversed == pytest.approx(
            100 * small.edges_traversed
        )
        assert scaled.total_energy > 10 * small.total_energy

    def test_cc_streams_both_directions(self, small_rmat):
        report = AcceleratorMachine().run(
            ConnectedComponents(), small_rmat
        ).report
        per_iter = report.edges_traversed / report.iterations
        assert per_iter == 2 * small_rmat.num_edges


class TestFactory:
    def test_unknown_machine(self):
        with pytest.raises(ConfigError):
            make_machine("acc+Optane")

    def test_label_passthrough(self):
        assert make_machine("acc+DRAM").label == "acc+DRAM"
