"""Incremental updates vs full rebuild (the dynamic-store oracle).

Replaying a seeded ``generate_requests`` stream against a
:class:`DynamicGraphStore` must leave the store equivalent to a graph
rebuilt from scratch out of the same rewritten edge multiset — same
edge multiset, same vertex count, same invalidated vertices, and the
same algorithm results on the exported graph.  This is the
differential-conformance idea of ``repro verify`` applied to the
Section 5 dynamic layer; the complementary hypothesis state machine in
test_dynamic_properties.py covers single operations.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.algorithms import ConnectedComponents, PageRank, run_vectorized
from repro.dynamic import DynamicGraphStore
from repro.dynamic.updates import (
    RequestKind,
    apply_requests,
    generate_requests,
)
from repro.graph import Graph, erdos_renyi


def _mirror_replay(graph: Graph, requests):
    """Replay the stream on a plain multiset + liveness model."""
    edges = Counter(zip(graph.src.tolist(), graph.dst.tolist()))
    num_vertices = graph.num_vertices
    dead: set[int] = set()
    for req in requests:
        if req.kind is RequestKind.ADD_EDGE:
            edges[(req.src, req.dst)] += 1
        elif req.kind is RequestKind.DELETE_EDGE:
            edges[(req.src, req.dst)] -= 1
            if not edges[(req.src, req.dst)]:
                del edges[(req.src, req.dst)]
        elif req.kind is RequestKind.ADD_VERTEX:
            num_vertices += 1
        else:
            # delete_vertex invalidates; incident edges stay (Section 5).
            dead.add(req.src)
    return edges, num_vertices, dead


def _rebuild(edges: Counter, num_vertices: int) -> Graph:
    """Full re-preprocessing: a fresh Graph from the edge multiset."""
    pairs = [e for e, count in sorted(edges.items()) for _ in range(count)]
    return Graph.from_edges(num_vertices, pairs, name="rebuilt")


def _edge_multiset(graph: Graph) -> Counter:
    return Counter(zip(graph.src.tolist(), graph.dst.tolist()))


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("count", [200, 1000])
def test_incremental_matches_full_rebuild(seed, count):
    base = erdos_renyi(48, 180, seed=seed, name="dyn-base")
    store = DynamicGraphStore(base, num_intervals=8)
    requests = generate_requests(base, count, seed=seed)

    apply_requests(store, requests)
    edges, num_vertices, dead = _mirror_replay(base, requests)

    assert store.num_vertices == num_vertices
    assert store.num_edges == sum(edges.values())
    assert sorted(store.invalid_vertices()) == sorted(dead)
    assert _edge_multiset(store.to_graph()) == edges


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", [5, 6])
def test_algorithms_agree_after_updates(seed):
    """The exported graph computes like the from-scratch rebuild.

    CC labels are minimum vertex ids, so they must match exactly; PR
    sums float contributions in block order vs insertion order, so it
    matches to accumulation tolerance.
    """
    base = erdos_renyi(40, 160, seed=seed, name="dyn-algo")
    store = DynamicGraphStore(base, num_intervals=8)
    requests = generate_requests(base, 400, seed=seed)
    apply_requests(store, requests)
    edges, num_vertices, _ = _mirror_replay(base, requests)

    exported = store.to_graph()
    rebuilt = _rebuild(edges, num_vertices)
    assert exported.num_vertices == rebuilt.num_vertices

    cc_inc = run_vectorized(ConnectedComponents(), exported)
    cc_full = run_vectorized(ConnectedComponents(), rebuilt)
    np.testing.assert_array_equal(cc_inc.values, cc_full.values)

    pr_inc = run_vectorized(PageRank(), exported)
    pr_full = run_vectorized(PageRank(), rebuilt)
    np.testing.assert_allclose(pr_inc.values, pr_full.values,
                               rtol=1e-12, atol=1e-15)


@pytest.mark.fuzz
def test_rebuild_survives_repartition():
    """Vertex growth past the slack capacity forces repartitions; the
    store must still equal the rebuilt graph afterwards."""
    base = erdos_renyi(16, 60, seed=9, name="dyn-grow")
    store = DynamicGraphStore(base, num_intervals=4, slack=0.25)
    requests = generate_requests(
        base, 300, seed=9,
        mix={"add_edge": 0.5, "add_vertex": 0.5},
    )
    apply_requests(store, requests)
    edges, num_vertices, dead = _mirror_replay(base, requests)

    assert store.stats.repartitions > 0
    assert not dead
    assert store.num_vertices == num_vertices
    assert _edge_multiset(store.to_graph()) == edges
    cc_inc = run_vectorized(ConnectedComponents(), store.to_graph())
    cc_full = run_vectorized(ConnectedComponents(),
                             _rebuild(edges, num_vertices))
    np.testing.assert_array_equal(cc_inc.values, cc_full.values)
