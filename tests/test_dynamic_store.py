"""Tests for the dynamic graph store (Section 5)."""

import numpy as np
import pytest

from repro.dynamic import (
    DynamicGraphStore,
    GraphRDynamicStore,
    INVALID_VALUE,
)
from repro.errors import DynamicGraphError
from repro.graph import Graph, rmat


@pytest.fixture
def store(small_rmat):
    return DynamicGraphStore(small_rmat, num_intervals=8)


class TestAddEdge:
    def test_increments_count(self, store):
        before = store.num_edges
        store.add_edge(0, 1)
        assert store.num_edges == before + 1
        assert store.stats.edges_added == 1

    def test_edge_visible_in_export(self, store):
        store.add_edge(3, 200)
        g = store.to_graph()
        assert g.has_edge(3, 200)

    def test_duplicate_edges_allowed(self, store):
        store.add_edge(0, 1)
        store.add_edge(0, 1)
        assert store.stats.edges_added == 2

    def test_slack_overflow_allocates_extension(self):
        g = Graph.from_edges(4, [(0, 1)])
        store = DynamicGraphStore(g, num_intervals=2, slack=0.0)
        for _ in range(30):
            store.add_edge(0, 1)
        assert store.stats.extensions_allocated >= 1
        assert store.num_edges == 31

    def test_rejects_out_of_range(self, store):
        with pytest.raises(DynamicGraphError):
            store.add_edge(0, 10 ** 6)

    def test_rejects_deleted_endpoint(self, store):
        store.delete_vertex(5)
        with pytest.raises(DynamicGraphError):
            store.add_edge(5, 0)


class TestDeleteEdge:
    def test_removes_one_instance(self, store):
        store.add_edge(0, 1)
        store.add_edge(0, 1)
        before = store.num_edges
        store.delete_edge(0, 1)
        assert store.num_edges == before - 1

    def test_round_trip(self, small_rmat, store):
        store.add_edge(7, 9)
        store.delete_edge(7, 9)
        original = sorted(zip(small_rmat.src.tolist(),
                              small_rmat.dst.tolist()))
        now = store.to_graph()
        assert sorted(zip(now.src.tolist(), now.dst.tolist())) == original

    def test_delete_existing_graph_edge(self, small_rmat, store):
        s, d = int(small_rmat.src[0]), int(small_rmat.dst[0])
        store.delete_edge(s, d)
        assert store.num_edges == small_rmat.num_edges - 1

    def test_rejects_missing_edge(self, store, small_rmat):
        pairs = set(zip(small_rmat.src.tolist(), small_rmat.dst.tolist()))
        s, d = next(
            (a, b)
            for a in range(small_rmat.num_vertices)
            for b in range(small_rmat.num_vertices)
            if (a, b) not in pairs
        )
        with pytest.raises(DynamicGraphError):
            store.delete_edge(s, d)


class TestVertices:
    def test_add_vertex_returns_fresh_id(self, store, small_rmat):
        v = store.add_vertex(2.5)
        assert v == small_rmat.num_vertices
        assert store.is_valid(v)
        assert store.value(v) == 2.5

    def test_add_vertex_then_edges(self, store):
        v = store.add_vertex()
        store.add_edge(v, 0)
        assert store.to_graph().has_edge(v, 0)

    def test_overflow_triggers_repartition(self, small_rmat):
        store = DynamicGraphStore(small_rmat, num_intervals=8, slack=0.01)
        slack_room = store._capacity - small_rmat.num_vertices
        for _ in range(slack_room + 5):
            store.add_vertex()
        assert store.stats.repartitions >= 1
        # All vertices still addressable after the rebuild.
        assert store.num_vertices == small_rmat.num_vertices + slack_room + 5

    def test_delete_vertex_invalidates_in_o1(self, store):
        edges_before = store.num_edges
        store.delete_vertex(3)
        assert not store.is_valid(3)
        assert store.value(3) == INVALID_VALUE
        # Paper scheme: edges remain stored.
        assert store.num_edges == edges_before

    def test_delete_vertex_purge_removes_edges(self, small_rmat):
        store = DynamicGraphStore(small_rmat, num_intervals=8)
        v = int(small_rmat.src[0])
        degree = int(
            ((small_rmat.src == v) | (small_rmat.dst == v)).sum()
        )
        removed = store.delete_vertex(v, purge_edges=True)
        assert removed == degree
        assert store.num_edges == small_rmat.num_edges - degree
        assert not store.to_graph().has_edge(v, int(small_rmat.dst[0]))

    def test_double_delete_rejected(self, store):
        store.delete_vertex(2)
        with pytest.raises(DynamicGraphError):
            store.delete_vertex(2)

    def test_repartition_preserves_edges(self, small_rmat):
        store = DynamicGraphStore(small_rmat, num_intervals=8, slack=0.01)
        for _ in range(store._capacity - small_rmat.num_vertices + 1):
            store.add_vertex()
        g = store.to_graph()
        assert g.num_edges == small_rmat.num_edges


class TestExport:
    def test_initial_export_matches(self, small_rmat, store):
        g = store.to_graph()
        original = sorted(zip(small_rmat.src.tolist(),
                              small_rmat.dst.tolist()))
        assert sorted(zip(g.src.tolist(), g.dst.tolist())) == original

    def test_empty_store(self):
        store = DynamicGraphStore(Graph.empty(4), num_intervals=2)
        assert store.to_graph().num_edges == 0


class TestSlackValidation:
    def test_rejects_negative_slack(self, small_rmat):
        with pytest.raises(DynamicGraphError):
            DynamicGraphStore(small_rmat, slack=-0.1)


class TestGraphRStore:
    def test_same_interface(self, small_rmat):
        store = GraphRDynamicStore(small_rmat)
        assert store.num_edges == small_rmat.num_edges
        store.add_edge(0, 1)
        store.delete_edge(0, 1)
        assert store.num_edges == small_rmat.num_edges

    def test_delete_missing_rejected(self, small_rmat):
        store = GraphRDynamicStore(small_rmat)
        # Find a non-edge.
        g = small_rmat
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        s, d = next(
            (a, b)
            for a in range(g.num_vertices)
            for b in range(g.num_vertices)
            if (a, b) not in pairs
        )
        with pytest.raises(DynamicGraphError):
            store.delete_edge(s, d)

    def test_vertex_lifecycle(self, small_rmat):
        store = GraphRDynamicStore(small_rmat)
        v = store.add_vertex()
        assert v == small_rmat.num_vertices
        store.delete_vertex(0)
        with pytest.raises(DynamicGraphError):
            store.delete_vertex(0)

    def test_purge_clears_dense_rows(self):
        g = Graph.from_edges(16, [(0, 1), (1, 0), (0, 9)])
        store = GraphRDynamicStore(g)
        removed = store.delete_vertex(0, purge_edges=True)
        assert removed == 3
        assert store.num_edges == 0

    def test_edge_count_tracks_duplicates(self):
        g = Graph.from_edges(8, [(0, 1)])
        store = GraphRDynamicStore(g)
        store.add_edge(0, 1)
        assert store.num_edges == 2
        store.delete_edge(0, 1)
        store.delete_edge(0, 1)
        assert store.num_edges == 0
