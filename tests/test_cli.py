"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import MACHINE_NAMES, build_parser, main
from repro.graph import io, rmat


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.machine == "acc+HyVE-opt"
        assert args.algorithm == "pr"
        assert args.dataset == "YT"

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--machine", "acc+Optane"])

    def test_machine_list_complete(self):
        assert "GraphR" in MACHINE_NAMES
        assert "CPU+DRAM" in MACHINE_NAMES
        assert "acc+HyVE-opt" in MACHINE_NAMES


class TestInfo:
    def test_lists_everything(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "com-youtube" in out
        assert "acc+HyVE-opt" in out
        assert "fig16" in out


class TestRun:
    def test_run_dataset(self, capsys):
        assert main(["run", "--dataset", "YT", "--algorithm", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "MTEPS/W" in out
        assert "breakdown" in out

    def test_run_json(self, capsys):
        assert main(["run", "--dataset", "YT", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "acc+HyVE-opt"
        assert payload["mteps_per_watt"] > 0
        assert sum(payload["breakdown"].values()) == pytest.approx(1.0)

    def test_run_custom_graph(self, tmp_path, capsys):
        graph = rmat(100, 400, seed=1, name="custom")
        path = tmp_path / "g.txt"
        io.save_edge_list(graph, path)
        assert main(["run", "--graph", str(path), "--algorithm", "cc"]) == 0
        assert "CC" in capsys.readouterr().out

    def test_run_graphr_machine(self, capsys):
        assert main(
            ["run", "--dataset", "YT", "--machine", "GraphR"]
        ) == 0
        assert "GraphR" in capsys.readouterr().out


class TestCompare:
    def test_ranks_all_machines(self, capsys):
        assert main(["compare", "--dataset", "YT", "--algorithm", "pr"]) == 0
        out = capsys.readouterr().out
        for name in MACHINE_NAMES:
            assert name in out
        # HyVE-opt must rank first.
        first_line = out.splitlines()[1]
        assert first_line.startswith("acc+HyVE-opt")


class TestFaultsFlag:
    def test_run_with_faults_prints_summary(self, capsys):
        assert main(["run", "--dataset", "YT", "--faults", "harsh",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        assert "injected" in out

    def test_run_faults_json_payload(self, capsys):
        assert main(["run", "--dataset", "YT", "--faults", "mild",
                     "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"]["total_injected"] > 0

    def test_faults_deterministic_across_invocations(self, capsys):
        argv = ["run", "--dataset", "YT", "--faults", "worn",
                "--seed", "42", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "apocalyptic"])

    def test_cpu_machine_ignores_faults(self, capsys):
        assert main(["run", "--dataset", "YT", "--machine", "CPU+DRAM",
                     "--faults", "harsh"]) == 0
        assert "faults:" not in capsys.readouterr().out


class TestErrorExits:
    def test_unknown_dataset_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "ORKUT"])

    def test_unknown_machine_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--machine", "acc+Optane"])

    def test_missing_graph_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.txt"
        assert main(["run", "--graph", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1

    def test_malformed_graph_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 1\n2 banana\n")
        assert main(["run", "--graph", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "bad.txt:2" in err
        assert err.startswith("error:")


class TestExperiment:
    def test_single_experiment_no_save(self, capsys):
        assert main(["experiment", "table3", "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "102.1" in out or "102.07" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "fig99", "--no-save"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["experiment", "table3",
                                          "--jobs", "4"])
        assert args.jobs == 4

    def test_experiment_with_jobs_matches_serial(self, capsys):
        assert main(["experiment", "table3", "--no-save"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiment", "table3", "--no-save",
                     "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestCacheCommand:
    def test_info_reports_store(self, capsys, tmp_path, monkeypatch):
        from repro.perf.cache import RunCache, set_run_cache

        set_run_cache(RunCache(directory=tmp_path / "store"))
        try:
            assert main(["run", "--dataset", "YT"]) == 0
            capsys.readouterr()
            assert main(["cache", "info"]) == 0
            out = capsys.readouterr().out
            assert str(tmp_path / "store") in out
            assert "disk entries:" in out
            assert "session stats:" in out
        finally:
            set_run_cache(None)

    def test_clear_removes_entries(self, capsys, tmp_path):
        from repro.perf.cache import RunCache, set_run_cache

        set_run_cache(RunCache(directory=tmp_path / "store"))
        try:
            assert main(["run", "--dataset", "YT"]) == 0
            capsys.readouterr()
            assert main(["cache", "clear"]) == 0
            out = capsys.readouterr().out
            assert "removed" in out
            assert "cached run(s)" in out
            assert main(["cache", "info"]) == 0
            assert "disk entries:   0" in capsys.readouterr().out
        finally:
            set_run_cache(None)

    def test_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "compact"])

    def test_migrate_adopts_legacy_files(self, capsys, tmp_path):
        from repro.perf.cache import temporary_run_cache

        directory = tmp_path / "store"
        directory.mkdir()
        (directory / "scalar-ab12.json").write_text(
            '{"name": "s", "value": 2.5, "salt": "v"}')
        with temporary_run_cache(directory):
            assert main(["cache", "migrate"]) == 0
            out = capsys.readouterr().out
            assert "migrated 1 entr(ies)" in out
        assert not (directory / "scalar-ab12.json").exists()

    def test_verify_flags_quarantine(self, capsys, tmp_path):
        from repro.perf.cache import temporary_run_cache

        with temporary_run_cache(tmp_path / "store") as cache:
            store = cache._disk()
            store.put("k", b"x" * 32, kind="run")
            assert main(["cache", "verify"]) == 0
            assert "1 ok" in capsys.readouterr().out
            store.corrupt_bit("k", 5)
            assert main(["cache", "verify"]) == 1
            assert "quarantined" in capsys.readouterr().out

    def test_vacuum_reports_compaction(self, capsys, tmp_path):
        from repro.perf.cache import temporary_run_cache

        with temporary_run_cache(tmp_path / "store") as cache:
            store = cache._disk()
            store.put("k", b"x" * 32, kind="run")
            store.corrupt_bit("k", 5)
            store.get("k")  # quarantines
            assert main(["cache", "vacuum"]) == 0
            out = capsys.readouterr().out
            assert "dropped 1 quarantined row(s)" in out

    def test_maintenance_fails_cleanly_without_store(self, capsys):
        from repro.perf.cache import temporary_run_cache

        with temporary_run_cache(""):  # memory-only: no disk store
            for action in ("migrate", "verify", "vacuum"):
                assert main(["cache", action]) == 1
        assert "failed" in capsys.readouterr().err


class TestVerboseStats:
    def test_run_verbose_prints_cache_line(self, capsys):
        assert main(["run", "--dataset", "YT", "--verbose"]) == 0
        assert "[run cache]" in capsys.readouterr().out

    def test_run_quiet_by_default(self, capsys):
        assert main(["run", "--dataset", "YT"]) == 0
        assert "[run cache]" not in capsys.readouterr().out

    def test_compare_verbose_prints_cache_line(self, capsys):
        assert main(["compare", "--dataset", "YT", "--verbose"]) == 0
        assert "[run cache]" in capsys.readouterr().out
