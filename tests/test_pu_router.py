"""Tests for the processing-unit and router models."""

import pytest

from repro.arch import params
from repro.arch.processing_unit import ProcessingUnitModel
from repro.arch.router import RouterModel
from repro.errors import ConfigError
from repro.memory.nvsim import solve_sram
from repro.units import MB, NS


@pytest.fixture
def pu():
    return ProcessingUnitModel(sram_cycle=solve_sram(2 * MB).read_latency)


class TestProcessingUnit:
    def test_initiation_interval_is_scratchpad_bound(self, pu):
        # 3 accesses over 2 ports -> 1.5 SRAM cycles per edge.
        assert pu.initiation_interval == pytest.approx(1.5 * pu.sram_cycle)

    def test_mv_vs_traversal_energy(self, pu):
        assert pu.op_energy("PR") == params.PU_OP_ENERGY_MV
        assert pu.op_energy("SpMV") == params.PU_OP_ENERGY_MV
        assert pu.op_energy("BFS") == params.PU_OP_ENERGY_NON_MV
        assert pu.op_energy("BFS") < pu.op_energy("PR")

    def test_pipeline_fill_is_multiplier_latency(self, pu):
        assert pu.pipeline_fill() == pytest.approx(18.783 * NS)

    def test_rejects_zero_cycle(self):
        with pytest.raises(ConfigError):
            ProcessingUnitModel(sram_cycle=0.0)

    def test_paper_multiplier_energy(self):
        # 3.7 pJ for the 32-bit float multiplier [34].
        assert params.PU_OP_ENERGY_MV == pytest.approx(3.7e-12)


class TestRouter:
    def test_transfer_energy_linear(self):
        router = RouterModel(8)
        assert router.transfer_energy(100) == pytest.approx(
            100 * params.ROUTER_HOP_ENERGY_PER_WORD
        )

    def test_reroute_energy(self):
        router = RouterModel(8)
        assert router.reroute_energy(10) == pytest.approx(
            10 * params.ROUTER_REROUTE_ENERGY
        )

    def test_fill_latency(self):
        router = RouterModel(8)
        assert router.fill_latency(5) == pytest.approx(
            5 * params.ROUTER_FILL_LATENCY
        )

    def test_remote_access_latency_about_10ns(self):
        # Paper: "access latency of the remote interval is ~10 ns".
        assert params.ROUTER_FILL_LATENCY == pytest.approx(10 * NS)

    def test_rejects_negative_inputs(self):
        router = RouterModel(4)
        with pytest.raises(ConfigError):
            router.transfer_energy(-1)
        with pytest.raises(ConfigError):
            router.reroute_energy(-1)
        with pytest.raises(ConfigError):
            router.fill_latency(-1)

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigError):
            RouterModel(0)
