"""Tests for the vertex-centric executor (Section 2.1)."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    PageRank,
    SSSP,
    SpMV,
    run_vectorized,
    run_vertex_centric,
)
from repro.algorithms.vertex_centric import _expand_ranges
from repro.graph import Graph, path, rmat, star


ALGORITHMS = [PageRank, BFS, ConnectedComponents, SSSP, SpMV]


class TestEquivalence:
    @pytest.mark.parametrize("factory", ALGORITHMS)
    def test_matches_edge_centric(self, factory, small_rmat):
        vc = run_vertex_centric(factory(), small_rmat)
        ec = run_vectorized(factory(), small_rmat)
        np.testing.assert_allclose(vc.run.values, ec.values)
        assert vc.run.iterations == ec.iterations

    def test_empty_graph(self):
        vc = run_vertex_centric(ConnectedComponents(), Graph.empty(5))
        assert vc.edges_examined == 0


class TestTraffic:
    def test_pagerank_examines_every_edge(self, small_rmat):
        vc = run_vertex_centric(PageRank(), small_rmat)
        assert vc.edges_examined == vc.run.total_edges
        assert vc.edge_savings == 0.0

    def test_bfs_examines_fewer_edges(self, medium_rmat):
        vc = run_vertex_centric(BFS(0), medium_rmat)
        assert vc.edges_examined < vc.run.total_edges
        assert vc.edge_savings > 0.3

    def test_bfs_path_examines_each_edge_once(self):
        vc = run_vertex_centric(BFS(0), path(6))
        # Frontier is one vertex per level: 5 edges examined in total.
        assert vc.edges_examined == 5

    def test_star_bfs_single_scan_of_hub(self):
        vc = run_vertex_centric(BFS(0), star(10))
        assert vc.edges_examined == 10

    def test_vertices_scanned_bounded(self, small_rmat):
        vc = run_vertex_centric(ConnectedComponents(), small_rmat)
        streamed = ConnectedComponents().transform_graph(small_rmat)
        assert vc.vertices_scanned <= (
            vc.run.iterations * streamed.num_vertices
        )


class TestExpandRanges:
    def test_simple(self):
        out = _expand_ranges(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_zero_length_ranges_skipped(self):
        out = _expand_ranges(np.array([5, 7, 9]), np.array([2, 0, 1]))
        assert out.tolist() == [5, 6, 9]

    def test_all_empty(self):
        out = _expand_ranges(np.array([1, 2]), np.array([0, 0]))
        assert out.size == 0

    def test_single_range(self):
        out = _expand_ranges(np.array([4]), np.array([4]))
        assert out.tolist() == [4, 5, 6, 7]

    def test_matches_naive_expansion(self, rng):
        starts = rng.integers(0, 100, size=20)
        lengths = rng.integers(0, 6, size=20)
        expected = np.concatenate(
            [np.arange(s, s + l) for s, l in zip(starts, lengths)]
        ) if lengths.sum() else np.empty(0, dtype=np.int64)
        out = _expand_ranges(starts, lengths)
        np.testing.assert_array_equal(out, expected)


class TestAblationDriver:
    def test_execution_model_ablation_shapes(self):
        from repro.experiments.ablations import run_execution_model

        result = run_execution_model()
        for row in result.rows:
            algo, _, edge_ratio, energy_ratio = row
            assert 0.0 < edge_ratio <= 1.0
            if algo == "PR":
                # Full sweeps: vertex-centric only adds random-access cost.
                assert edge_ratio == pytest.approx(1.0)
                assert energy_ratio > 1.0
            else:
                # Traversals: vertex-centric skips most edges.
                assert edge_ratio < 0.6
