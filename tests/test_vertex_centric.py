"""Tests for the vertex-centric executor (Section 2.1)."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    ConnectedComponents,
    PageRank,
    SSSP,
    SpMV,
    run_vectorized,
    run_vertex_centric,
)
from repro.algorithms.vertex_centric import _changed, _csr, _expand_ranges
from repro.errors import ConvergenceError
from repro.graph import Graph, path, rmat, star


ALGORITHMS = [PageRank, BFS, ConnectedComponents, SSSP, SpMV]


def _run_vertex_centric_scalar(algorithm, graph):
    """Reference executor: one ``process_edges`` call *per edge*.

    The pre-vectorization semantics, kept as the identity baseline for
    the gather/scatter executor: same synchronous previous-iteration
    values, same frontier rules, but every active vertex's out-edges
    are pushed through length-1 slices in CSR order.  Returns
    ``(values, iterations, edges_examined)``.
    """
    from repro.algorithms.runner import transform_cached

    streamed = transform_cached(algorithm, graph)
    indptr, src, dst, weights = _csr(streamed)
    values = algorithm.initial_values(streamed)
    if (not algorithm.supports_frontier
            or algorithm.initial_active(streamed) >= streamed.num_vertices):
        active = np.ones(streamed.num_vertices, dtype=bool)
    else:
        uniques, inverse = np.unique(values, return_inverse=True)
        bulk = np.bincount(inverse).argmax()
        active = values != uniques[bulk]

    edges_examined = 0
    iterations = 0
    while True:
        acc = algorithm.iteration_start(values, streamed)
        for v in np.nonzero(active)[0].tolist():
            for e in range(int(indptr[v]), int(indptr[v + 1])):
                w = None if weights is None else weights[e:e + 1]
                algorithm.process_edges(
                    values, acc, src[e:e + 1], dst[e:e + 1], w, streamed
                )
                edges_examined += 1
        result = algorithm.iteration_end(values, acc, streamed, iterations)
        if algorithm.supports_frontier:
            active = _changed(values, result.values)
        else:
            active = np.ones(streamed.num_vertices, dtype=bool)
        values = result.values
        iterations += 1
        if result.converged:
            break
        if iterations > algorithm.max_iterations:
            raise ConvergenceError(f"{algorithm.name} did not converge")
    return values, iterations, edges_examined


class TestVectorizedScalarIdentity:
    """The vectorized executor must be indistinguishable from per-edge
    scalar execution: exact for the integer-valued traversals, 1e-12
    for the float accumulators (summation order differs)."""

    @pytest.mark.parametrize("factory", ALGORITHMS)
    def test_identity_on_rmat(self, factory, small_rmat):
        vec = run_vertex_centric(factory(), small_rmat)
        values, iterations, edges = _run_vertex_centric_scalar(
            factory(), small_rmat
        )
        assert vec.run.iterations == iterations
        assert vec.edges_examined == edges
        if vec.run.values.dtype.kind == "f":
            np.testing.assert_allclose(vec.run.values, values,
                                       rtol=1e-12, atol=1e-12)
        else:
            assert np.array_equal(vec.run.values, values)

    @pytest.mark.parametrize("factory", [BFS, SSSP])
    def test_identity_on_sparse_frontier(self, factory):
        # A long path keeps the frontier at one vertex per sweep — the
        # branch the full-frontier fast path must never mishandle.
        g = path(24)
        vec = run_vertex_centric(factory(), g)
        values, iterations, edges = _run_vertex_centric_scalar(
            factory(), g
        )
        assert vec.run.iterations == iterations
        assert vec.edges_examined == edges
        np.testing.assert_allclose(vec.run.values, values)


class TestEquivalence:
    @pytest.mark.parametrize("factory", ALGORITHMS)
    def test_matches_edge_centric(self, factory, small_rmat):
        vc = run_vertex_centric(factory(), small_rmat)
        ec = run_vectorized(factory(), small_rmat)
        np.testing.assert_allclose(vc.run.values, ec.values)
        assert vc.run.iterations == ec.iterations

    def test_empty_graph(self):
        vc = run_vertex_centric(ConnectedComponents(), Graph.empty(5))
        assert vc.edges_examined == 0


class TestTraffic:
    def test_pagerank_examines_every_edge(self, small_rmat):
        vc = run_vertex_centric(PageRank(), small_rmat)
        assert vc.edges_examined == vc.run.total_edges
        assert vc.edge_savings == 0.0

    def test_bfs_examines_fewer_edges(self, medium_rmat):
        vc = run_vertex_centric(BFS(0), medium_rmat)
        assert vc.edges_examined < vc.run.total_edges
        assert vc.edge_savings > 0.3

    def test_bfs_path_examines_each_edge_once(self):
        vc = run_vertex_centric(BFS(0), path(6))
        # Frontier is one vertex per level: 5 edges examined in total.
        assert vc.edges_examined == 5

    def test_star_bfs_single_scan_of_hub(self):
        vc = run_vertex_centric(BFS(0), star(10))
        assert vc.edges_examined == 10

    def test_vertices_scanned_bounded(self, small_rmat):
        vc = run_vertex_centric(ConnectedComponents(), small_rmat)
        streamed = ConnectedComponents().transform_graph(small_rmat)
        assert vc.vertices_scanned <= (
            vc.run.iterations * streamed.num_vertices
        )


class TestExpandRanges:
    def test_simple(self):
        out = _expand_ranges(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_zero_length_ranges_skipped(self):
        out = _expand_ranges(np.array([5, 7, 9]), np.array([2, 0, 1]))
        assert out.tolist() == [5, 6, 9]

    def test_all_empty(self):
        out = _expand_ranges(np.array([1, 2]), np.array([0, 0]))
        assert out.size == 0

    def test_single_range(self):
        out = _expand_ranges(np.array([4]), np.array([4]))
        assert out.tolist() == [4, 5, 6, 7]

    def test_matches_naive_expansion(self, rng):
        starts = rng.integers(0, 100, size=20)
        lengths = rng.integers(0, 6, size=20)
        expected = np.concatenate(
            [np.arange(s, s + l) for s, l in zip(starts, lengths)]
        ) if lengths.sum() else np.empty(0, dtype=np.int64)
        out = _expand_ranges(starts, lengths)
        np.testing.assert_array_equal(out, expected)


class TestAblationDriver:
    def test_execution_model_ablation_shapes(self):
        from repro.experiments.ablations import run_execution_model

        result = run_execution_model()
        for row in result.rows:
            algo, _, edge_ratio, energy_ratio = row
            assert 0.0 < edge_ratio <= 1.0
            if algo == "PR":
                # Full sweeps: vertex-centric only adds random-access cost.
                assert edge_ratio == pytest.approx(1.0)
                assert energy_ratio > 1.0
            else:
                # Traversals: vertex-centric skips most edges.
                assert edge_ratio < 0.6
