"""Tests for the fault-injection subsystem and its resilience costs.

The two contracts everything else leans on:

1. **Zero-fault pass-through** — an all-zero profile produces reports
   bit-identical to an uninstrumented machine (no float drift, no
   spurious components).
2. **Determinism** — the same profile + seed injects the identical
   fault population on every run.
"""

import math

import pytest

from repro.arch.config import NAMED_CONFIGS
from repro.arch.machine import AcceleratorMachine, make_machine
from repro.arch.config import Workload
from repro.dynamic.store import DynamicGraphStore
from repro.dynamic.updates import apply_requests, generate_requests
from repro.errors import ConfigError, FaultError, ReproError, SweepPointError
from repro.faults import (
    FAULT_PROFILES,
    BankSparingPlan,
    FaultInjector,
    FaultProfile,
    SECDEDDevice,
    derive_seed,
    expected_write_rounds,
    make_profile,
    secded_factor,
    write_give_up_probability,
)
from repro.graph import rmat
from repro.memory.base import (
    AccessCost,
    AccessKind,
    AccessPattern,
    MemoryDevice,
)
from repro.units import GB, PJ


@pytest.fixture(scope="module")
def workload():
    return Workload(rmat(2048, 16000, seed=41, name="faults"),
                    reported_vertices=2_048_000,
                    reported_edges=16_000_000)


class TestErrors:
    def test_fault_error_is_repro_error(self):
        assert issubclass(FaultError, ReproError)
        assert issubclass(SweepPointError, ReproError)


class TestProfile:
    def test_zero_profile_is_zero(self):
        assert FaultProfile.zero().is_zero
        assert FAULT_PROFILES["none"].is_zero

    def test_named_profiles_nonzero(self):
        for name in ("mild", "harsh", "worn"):
            assert not FAULT_PROFILES[name].is_zero

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigError):
            FaultProfile(reram_stuck_cell_rate=1.5)
        with pytest.raises(ConfigError):
            FaultProfile(bank_failure_rate=-0.1)

    def test_rejects_certain_write_failure(self):
        with pytest.raises(ConfigError):
            FaultProfile(reram_write_fail_rate=1.0)

    def test_rejects_nonfinite_rates(self):
        with pytest.raises(ConfigError):
            FaultProfile(sram_upset_rate=float("inf"))

    def test_make_profile_unknown(self):
        with pytest.raises(ConfigError):
            make_profile("catastrophic")

    def test_make_profile_seed_override(self):
        assert make_profile("mild", seed=99).seed == 99
        assert make_profile("mild").seed == FAULT_PROFILES["mild"].seed

    def test_wear_fresh_device_no_wear(self):
        assert FaultProfile(reram_endurance_writes=1e8).wear_stuck_fraction == 0

    def test_wear_half_at_rated_endurance(self):
        p = FaultProfile(reram_endurance_writes=1e8,
                         reram_lifetime_writes=1e8)
        assert p.wear_stuck_fraction == pytest.approx(0.5)

    def test_wear_monotonic(self):
        young = FaultProfile(reram_endurance_writes=1e8,
                             reram_lifetime_writes=1e7)
        old = FaultProfile(reram_endurance_writes=1e8,
                           reram_lifetime_writes=9e7)
        assert young.wear_stuck_fraction < old.wear_stuck_fraction


class TestInjectorDeterminism:
    def test_derive_seed_stable(self):
        assert derive_seed(1, "tag") == derive_seed(1, "tag")
        assert derive_seed(1, "tag") != derive_seed(2, "tag")
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_same_seed_same_banks(self):
        profile = make_profile("harsh", seed=5)
        a = FaultInjector(profile, "t").sample_failed_banks(64)
        b = FaultInjector(profile, "t").sample_failed_banks(64)
        assert a == b

    def test_different_tags_decorrelated(self):
        profile = make_profile("harsh", seed=5)
        flips_a = FaultInjector(profile, "a").sample_transient_flips(
            1e15, profile.dram_upset_rate)
        flips_b = FaultInjector(profile, "b").sample_transient_flips(
            1e15, profile.dram_upset_rate)
        assert flips_a != flips_b  # 1e4 expected events; collision ~0

    def test_all_banks_failing_raises(self):
        profile = FaultProfile(bank_failure_rate=1.0, seed=1)
        with pytest.raises(FaultError):
            FaultInjector(profile, "t").sample_failed_banks(8)


class TestResilienceMath:
    def test_write_rounds_ideal(self):
        assert expected_write_rounds(0.0, 5) == 1.0

    def test_write_rounds_formula(self):
        p = 0.5
        assert expected_write_rounds(p, 3) == pytest.approx(
            1 + p + p * p)

    def test_give_up_probability(self):
        assert write_give_up_probability(0.0, 5) == 0.0
        assert write_give_up_probability(0.1, 3) == pytest.approx(1e-3)

    def test_sparing_no_failures_no_loss(self):
        plan, chips = BankSparingPlan.build(
            footprint_bits=1 * GB, chips=2, banks_per_chip=8,
            bank_capacity_bits=4 * GB / 8, density_bits=4 * GB,
            failed_banks=0)
        assert plan.capacity_loss_fraction == 0.0
        assert plan.transition_factor == 1.0
        assert chips == 2

    def test_sparing_adds_chips_when_capacity_short(self):
        plan, chips = BankSparingPlan.build(
            footprint_bits=7.5 * GB, chips=2, banks_per_chip=8,
            bank_capacity_bits=4 * GB / 8, density_bits=4 * GB,
            failed_banks=4)
        assert chips > 2
        assert plan.spare_chips == chips - 2
        assert plan.transition_factor > 1.0

    def test_sparing_rejects_hopeless_wordloss(self):
        with pytest.raises(FaultError):
            BankSparingPlan.build(
                footprint_bits=1 * GB, chips=2, banks_per_chip=8,
                bank_capacity_bits=4 * GB / 8, density_bits=4 * GB,
                failed_banks=0, bad_word_fraction=0.6)


class _ToyDevice(MemoryDevice):
    """Minimal concrete device for wrapper tests."""

    access_bits = 64
    standby_power = 1e-3
    gated_power = 1e-4
    mats_per_bank = 7  # device-specific attribute the wrapper forwards

    def access_cost(self, kind, pattern):
        return AccessCost(latency=1e-9, energy=1.0 * PJ)


class TestSECDEDDevice:
    def test_factor(self):
        assert secded_factor() == pytest.approx(72 / 64)

    def test_access_cost_scaled(self):
        raw = _ToyDevice()
        ecc = SECDEDDevice(raw)
        raw_cost = raw.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
        ecc_cost = ecc.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
        assert ecc_cost.latency == pytest.approx(
            raw_cost.latency * secded_factor())
        # Energy: traffic factor plus per-word logic energy.
        assert ecc_cost.energy > raw_cost.energy * secded_factor()

    def test_background_power_scaled(self):
        ecc = SECDEDDevice(_ToyDevice())
        assert ecc.standby_power == pytest.approx(1e-3 * secded_factor())
        assert ecc.gated_power == pytest.approx(1e-4 * secded_factor())

    def test_data_facing_width_preserved(self):
        assert SECDEDDevice(_ToyDevice()).access_bits == 64

    def test_forwards_inner_attributes(self):
        assert SECDEDDevice(_ToyDevice()).mats_per_bank == 7


class TestZeroFaultPassThrough:
    """The central invariant: all-zero rates change nothing at all."""

    @pytest.mark.parametrize("config_name", sorted(NAMED_CONFIGS))
    def test_reports_bit_identical(self, config_name, workload):
        from repro.algorithms import PageRank

        baseline = make_machine(config_name).run(
            PageRank(), workload).report
        instrumented = make_machine(
            config_name, faults=FaultProfile.zero()
        ).run(PageRank(), workload)
        assert instrumented.faults is None
        assert instrumented.report.to_dict() == baseline.to_dict()

    def test_algorithm_results_untouched(self, workload):
        """Faults live in the device/energy layer: the algorithm's
        computed values are identical with and without instrumentation
        (vectorised and blocked execution alike)."""
        import numpy as np

        from repro.algorithms import PageRank, run_blocked, run_vectorized

        plain = make_machine("acc+HyVE-opt").run(PageRank(), workload)
        faulted = make_machine(
            "acc+HyVE-opt", faults=make_profile("harsh", seed=1)
        ).run(PageRank(), workload)
        np.testing.assert_array_equal(plain.run.values, faulted.run.values)
        assert plain.run.iterations == faulted.run.iterations
        # And the executors themselves agree, as always.
        vec = run_vectorized(PageRank(), workload.graph)
        blk = run_blocked(PageRank(), workload.graph, num_intervals=4,
                          num_pus=2)
        np.testing.assert_allclose(vec.values, blk.values)

    def test_none_profile_via_name(self, workload):
        from repro.algorithms import BFS

        baseline = make_machine("acc+HyVE-opt").run(BFS(), workload).report
        instrumented = make_machine(
            "acc+HyVE-opt", faults=make_profile("none")
        ).run(BFS(), workload).report
        assert instrumented.to_dict() == baseline.to_dict()


class TestFaultedRuns:
    @pytest.mark.parametrize("profile_name", ["mild", "harsh", "worn"])
    def test_deterministic_across_runs(self, profile_name, workload):
        from repro.algorithms import PageRank

        profile = make_profile(profile_name, seed=11)
        sims = [
            make_machine("acc+HyVE-opt", faults=profile).run(
                PageRank(), workload)
            for _ in range(2)
        ]
        assert sims[0].faults is not None
        assert sims[0].faults.total_injected == sims[1].faults.total_injected
        assert sims[0].faults.to_dict() == sims[1].faults.to_dict()
        assert sims[0].report.to_dict() == sims[1].report.to_dict()

    def test_faults_cost_efficiency(self, workload):
        from repro.algorithms import PageRank

        ideal = make_machine("acc+HyVE-opt").run(PageRank(), workload).report
        faulted = make_machine(
            "acc+HyVE-opt", faults=make_profile("harsh", seed=3)
        ).run(PageRank(), workload).report
        assert faulted.mteps_per_watt < ideal.mteps_per_watt

    def test_seed_changes_population(self, workload):
        from repro.algorithms import PageRank

        a = make_machine(
            "acc+HyVE-opt", faults=make_profile("worn", seed=1)
        ).run(PageRank(), workload).faults
        b = make_machine(
            "acc+HyVE-opt", faults=make_profile("worn", seed=2)
        ).run(PageRank(), workload).faults
        assert a.to_dict() != b.to_dict()

    def test_fault_report_serialisable(self, workload):
        import json

        from repro.algorithms import PageRank

        sim = make_machine(
            "acc+HyVE", faults=make_profile("mild", seed=7)
        ).run(PageRank(), workload)
        payload = json.loads(json.dumps(sim.faults.to_dict()))
        assert payload["total_injected"] == sim.faults.total_injected
        assert math.isfinite(payload["resilience_energy_j"])


class TestDynamicUpdateFaults:
    def _store_and_requests(self):
        graph = rmat(256, 2000, seed=5, name="dyn")
        store = DynamicGraphStore(graph, num_intervals=4)
        requests = generate_requests(graph, 500, seed=9)
        return store, requests

    def test_drops_reduce_applied_requests(self):
        store, requests = self._store_and_requests()
        profile = FaultProfile(update_drop_rate=0.5, seed=3)
        injector = FaultInjector(profile, "updates")
        apply_requests(store, requests, injector=injector)
        counts = injector.update_counts
        assert counts.dropped > 0
        assert counts.duplicated == 0

    def test_duplicates_absorbed_as_conflicts(self):
        store, requests = self._store_and_requests()
        profile = FaultProfile(update_duplicate_rate=0.3, seed=3)
        injector = FaultInjector(profile, "updates")
        apply_requests(store, requests, injector=injector)
        counts = injector.update_counts
        assert counts.duplicated > 0
        # A duplicated deletion targets an already-deleted edge; the
        # replay absorbs it instead of raising.
        assert counts.conflicts > 0

    def test_perturbation_deterministic(self):
        graph = rmat(256, 2000, seed=5, name="dyn")
        requests = generate_requests(graph, 500, seed=9)
        profile = FaultProfile(update_drop_rate=0.2,
                               update_duplicate_rate=0.2, seed=8)
        a = FaultInjector(profile, "t").perturb_requests(requests)
        b = FaultInjector(profile, "t").perturb_requests(requests)
        assert a == b

    def test_no_injector_keeps_strict_semantics(self):
        store, requests = self._store_and_requests()
        changed = apply_requests(store, requests)
        assert changed > 0
