"""The exception hierarchy is stable public API."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.GraphError,
    errors.PartitionError,
    errors.ConfigError,
    errors.MemoryModelError,
    errors.DynamicGraphError,
    errors.ConvergenceError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_catchable_as_repro_error(exc):
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_errors_are_distinct():
    assert len(set(ALL_ERRORS)) == len(ALL_ERRORS)
