"""Tests for the infrastructure-chaos injector and its store wiring.

The central invariants, mirroring the device-fault layer of PR 1: the
injector is deterministic per (profile, seed), an all-zero profile
draws no entropy and perturbs nothing, and every injected fault is
*absorbed* by the robustness machinery — torn writes and bit flips are
quarantined and recomputed, stale locks are broken, and results stay
bit-identical.
"""

import json

import numpy as np
import pytest

from repro.errors import ChaosError
from repro.faults.chaos import (
    CHAOS_PROFILES,
    ChaosInjector,
    ChaosProfile,
    chaos_context,
    get_chaos,
    make_chaos_profile,
    set_chaos,
)
from repro.obs import metrics as obs_metrics
from repro.perf.store import SQLiteStore


class TestProfile:
    def test_rates_validated(self):
        with pytest.raises(ChaosError):
            ChaosProfile(torn_write_rate=1.5)
        with pytest.raises(ChaosError):
            ChaosProfile(bit_flip_rate=-0.1)
        with pytest.raises(ChaosError):
            ChaosProfile(slow_io_max_s=float("nan"))

    def test_zero_profile_is_zero(self):
        assert ChaosProfile.zero().is_zero
        assert not ChaosProfile(torn_write_rate=0.01).is_zero

    def test_named_profiles(self):
        assert CHAOS_PROFILES["none"].is_zero
        assert not CHAOS_PROFILES["hostile"].is_zero
        profile = make_chaos_profile("flaky-disk", seed=99)
        assert profile.seed == 99
        assert profile.torn_write_rate == (
            CHAOS_PROFILES["flaky-disk"].torn_write_rate
        )
        with pytest.raises(ChaosError, match="unknown chaos profile"):
            make_chaos_profile("apocalypse")


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        profile = ChaosProfile(seed=7, torn_write_rate=0.5)
        a = ChaosInjector(profile)
        b = ChaosInjector(profile)
        payload = bytes(range(200))
        outcomes_a = [a.filter_payload("k", payload) for _ in range(50)]
        outcomes_b = [b.filter_payload("k", payload) for _ in range(50)]
        assert outcomes_a == outcomes_b
        assert a.counts == b.counts
        assert a.counts["torn_write"] > 0

    def test_different_seed_diverges(self):
        payload = bytes(range(200))
        a = ChaosInjector(ChaosProfile(seed=1, torn_write_rate=0.5))
        b = ChaosInjector(ChaosProfile(seed=2, torn_write_rate=0.5))
        outcomes_a = [a.filter_payload("k", payload) for _ in range(50)]
        outcomes_b = [b.filter_payload("k", payload) for _ in range(50)]
        assert outcomes_a != outcomes_b


class TestZeroPassThrough:
    def test_zero_profile_draws_no_entropy(self):
        injector = ChaosInjector(ChaosProfile.zero(seed=5))
        state_before = injector._rng.bit_generator.state
        payload = b"x" * 100
        assert injector.filter_payload("k", payload) is payload
        injector.io_delay()
        injector.maybe_stale_lock(None)  # must not even touch the path
        assert injector._rng.bit_generator.state == state_before
        assert injector.total_injections == 0

    def test_zero_profile_store_writes_untouched(self, tmp_path):
        with chaos_context(ChaosProfile.zero()) as injector:
            store = SQLiteStore(tmp_path / "store")
            rng = np.random.default_rng(3)
            payloads = {f"k{i}": rng.bytes(300) for i in range(20)}
            for key, payload in payloads.items():
                store.put(key, payload, kind="run")
            for key, payload in payloads.items():
                assert store.get(key) == payload
        assert injector.total_injections == 0


class TestInstallation:
    def test_context_installs_and_restores(self):
        assert get_chaos() is None
        with chaos_context(ChaosProfile.zero()) as injector:
            assert get_chaos() is injector
        assert get_chaos() is None

    def test_set_chaos_explicit(self):
        injector = ChaosInjector(ChaosProfile.zero())
        set_chaos(injector)
        try:
            assert get_chaos() is injector
        finally:
            set_chaos(None)


class TestStoreAbsorbsChaos:
    def test_torn_writes_quarantined_and_recomputed(self, tmp_path):
        profile = ChaosProfile(seed=11, torn_write_rate=1.0)
        store = SQLiteStore(tmp_path / "store")
        payload = bytes(range(256))
        with chaos_context(profile) as injector:
            store.put("k", payload, kind="run")
            assert injector.counts["torn_write"] == 1
            # The torn entry fails its checksum: quarantined, not served.
            assert store.get("k") is None
        assert store.quarantine_count() == 1
        # The recompute (chaos off) lands whole.
        store.put("k", payload, kind="run")
        assert store.get("k") == payload

    def test_bit_flips_quarantined(self, tmp_path):
        profile = ChaosProfile(seed=2, bit_flip_rate=1.0)
        store = SQLiteStore(tmp_path / "store")
        with chaos_context(profile) as injector:
            store.put("k", bytes(64), kind="run")
            assert injector.counts["bit_flip"] == 1
            assert store.get("k") is None
        assert store.quarantine_count() == 1

    def test_injections_counted_in_metrics(self, tmp_path):
        registry = obs_metrics.get_metrics()
        before = registry.counter(obs_metrics.CHAOS_INJECTIONS).value
        with chaos_context(ChaosProfile(seed=1, torn_write_rate=1.0)):
            store = SQLiteStore(tmp_path / "store")
            store.put("k", bytes(64), kind="run")
        after = registry.counter(obs_metrics.CHAOS_INJECTIONS).value
        assert after == before + 1


class TestStaleLockInjection:
    def test_planted_lock_names_dead_owner_and_is_broken(self, tmp_path):
        """The injected stale lock is exactly the artefact the cache's
        dead-owner reclaim must absorb: plant one, then watch a cache
        lookup break it and proceed."""
        from repro.algorithms import PageRank
        from repro.graph import rmat
        from repro.perf.cache import RunCache

        profile = ChaosProfile(seed=4, stale_lock_rate=1.0)
        graph = rmat(64, 256, seed=9, name="chaos-rmat")
        cache = RunCache(directory=tmp_path / "store")
        key = cache.key(PageRank(), graph)
        lock = cache._lock_path(key)
        with chaos_context(profile) as injector:
            run = cache.get_or_run(PageRank(), graph)
        assert injector.counts["stale_lock"] == 1
        assert run.iterations > 0
        assert not lock.exists()  # broken and cleaned up

    def test_planted_lock_payload_is_dead_pid(self, tmp_path):
        profile = ChaosProfile(seed=4, stale_lock_rate=1.0)
        injector = ChaosInjector(profile)
        lock = tmp_path / "x.lock"
        injector.maybe_stale_lock(lock)
        owner = json.loads(lock.read_text())
        import os
        with pytest.raises(ProcessLookupError):
            os.kill(owner["pid"], 0)


class TestKillWorkerGuard:
    def test_never_fires_in_installing_process(self):
        profile = ChaosProfile(seed=1, kill_worker_rate=1.0)
        injector = ChaosInjector(profile)
        # Would os._exit(137) without the PID guard.
        injector.maybe_kill_worker()
        assert injector.counts["kill_worker"] == 0
