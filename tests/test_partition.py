"""Tests for interval-block partitioning (Fig. 1, Algorithm 1)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import Graph, IntervalBlockPartition, interval_bounds, interval_of


class TestIntervalBounds:
    def test_even_split(self):
        bounds = interval_bounds(8, 4)
        assert bounds.tolist() == [0, 2, 4, 6, 8]

    def test_uneven_split_front_loads_extras(self):
        bounds = interval_bounds(10, 4)
        assert bounds.tolist() == [0, 3, 6, 8, 10]

    def test_single_interval(self):
        assert interval_bounds(5, 1).tolist() == [0, 5]

    def test_rejects_zero_intervals(self):
        with pytest.raises(PartitionError):
            interval_bounds(5, 0)

    def test_interval_of(self):
        bounds = interval_bounds(8, 4)
        vertices = np.array([0, 1, 2, 5, 7])
        assert interval_of(vertices, bounds).tolist() == [0, 0, 1, 2, 3]


class TestFig1Example:
    """The partition of the paper's running example must match Fig. 1."""

    def test_edge_e24_lands_in_block_1_2(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        src, dst = p.block_edges(1, 2)
        assert (2, 4) in set(zip(src.tolist(), dst.tolist()))

    def test_block_contents(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        src, dst = p.block_edges(0, 0)
        assert set(zip(src.tolist(), dst.tolist())) == {(1, 0)}
        src, dst = p.block_edges(3, 0)
        assert set(zip(src.tolist(), dst.tolist())) == {(6, 0), (7, 1)}

    def test_interval_sizes(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        assert p.interval_sizes().tolist() == [2, 2, 2, 2]


class TestInvariants:
    def test_every_edge_in_exactly_one_block(self, medium_rmat):
        p = IntervalBlockPartition.build(medium_rmat, 16)
        total = sum(
            p.block_edge_count(i, j) for i in range(16) for j in range(16)
        )
        assert total == medium_rmat.num_edges

    def test_block_counts_matrix_sums(self, medium_rmat):
        p = IntervalBlockPartition.build(medium_rmat, 16)
        assert p.block_counts.sum() == medium_rmat.num_edges

    def test_block_edges_belong_to_their_intervals(self, medium_rmat):
        p = IntervalBlockPartition.build(medium_rmat, 8)
        for i in range(8):
            for j in range(8):
                src, dst = p.block_edges(i, j)
                if src.size == 0:
                    continue
                assert (src >= p.bounds[i]).all()
                assert (src < p.bounds[i + 1]).all()
                assert (dst >= p.bounds[j]).all()
                assert (dst < p.bounds[j + 1]).all()

    def test_block_edge_indices_are_a_partition(self, small_rmat):
        p = IntervalBlockPartition.build(small_rmat, 4)
        seen = np.concatenate(
            [p.block_edge_indices(i, j) for i in range(4) for j in range(4)]
        )
        assert sorted(seen.tolist()) == list(range(small_rmat.num_edges))

    def test_empty_graph(self):
        p = IntervalBlockPartition.build(Graph.empty(10), 5)
        assert p.nonempty_blocks() == 0
        assert p.occupancy() == 0.0


class TestValidation:
    def test_rejects_zero_intervals(self, tiny_graph):
        with pytest.raises(PartitionError):
            IntervalBlockPartition.build(tiny_graph, 0)

    def test_rejects_more_intervals_than_vertices(self, tiny_graph):
        with pytest.raises(PartitionError):
            IntervalBlockPartition.build(tiny_graph, 100)

    def test_block_index_out_of_range(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        with pytest.raises(PartitionError):
            p.block_edge_count(4, 0)
        with pytest.raises(PartitionError):
            p.block_edges(0, -1)

    def test_interval_index_out_of_range(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        with pytest.raises(PartitionError):
            p.interval_size(4)


class TestSuperBlocks:
    def test_count(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        assert p.num_super_blocks(2) == 4
        assert p.num_super_blocks(4) == 1

    def test_requires_divisibility(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        with pytest.raises(PartitionError):
            p.num_super_blocks(3)

    def test_super_block_counts_sum(self, medium_rmat):
        p = IntervalBlockPartition.build(medium_rmat, 16)
        sb = p.super_block_counts(4)
        assert sb.shape == (4, 4)
        assert sb.sum() == medium_rmat.num_edges

    def test_step_counts_cover_all_blocks(self, medium_rmat):
        n = 4
        p = IntervalBlockPartition.build(medium_rmat, 8)
        steps = p.super_block_step_counts(n)
        assert steps.shape == (2, 2, n, n)
        assert steps.sum() == medium_rmat.num_edges

    def test_step_counts_round_robin_assignment(self, tiny_graph):
        # With P = N = 4 there is one super block; step s, PU k processes
        # block ((k + s) % 4, k).
        p = IntervalBlockPartition.build(tiny_graph, 4)
        steps = p.super_block_step_counts(4)
        for s in range(4):
            for k in range(4):
                expected = p.block_edge_count((k + s) % 4, k)
                assert steps[0, 0, s, k] == expected


class TestStats:
    def test_nonempty_blocks(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        assert p.nonempty_blocks() == np.count_nonzero(p.block_counts)

    def test_occupancy_bounds(self, medium_rmat):
        p = IntervalBlockPartition.build(medium_rmat, 8)
        assert 0.0 < p.occupancy() <= 1.0

    def test_max_interval_size(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        assert p.max_interval_size() == 2

    def test_interval_vertices(self, tiny_graph):
        p = IntervalBlockPartition.build(tiny_graph, 4)
        assert p.interval_vertices(1).tolist() == [2, 3]
