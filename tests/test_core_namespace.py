"""The repro.core namespace exposes the paper's contribution."""

import pytest

from repro import core


def test_hyve_alias_is_the_machine():
    from repro.arch.machine import AcceleratorMachine

    assert core.HyVE is AcceleratorMachine


def test_default_machine_is_the_optimised_design():
    machine = core.HyVE()
    assert machine.label == "acc+HyVE-opt"
    assert machine.config.data_sharing
    assert machine.config.power_gating.enabled


def test_all_names_resolve():
    for name in core.__all__:
        assert getattr(core, name) is not None


def test_end_to_end_through_core(small_rmat):
    from repro.algorithms import PageRank

    result = core.HyVE(core.config_hyve()).run(PageRank(), small_rmat)
    assert result.report.total_energy > 0
    assert result.values.sum() == pytest.approx(1.0, abs=1e-9)
