"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    complete,
    cycle,
    erdos_renyi,
    grid_2d,
    path,
    random_weights,
    rmat,
    star,
)
from repro.graph.stats import skew_gini


class TestRmat:
    def test_exact_sizes(self):
        g = rmat(100, 500, seed=0)
        assert g.num_vertices == 100
        assert g.num_edges == 500

    def test_deterministic(self):
        a = rmat(128, 512, seed=42)
        b = rmat(128, 512, seed=42)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = rmat(128, 512, seed=1)
        b = rmat(128, 512, seed=2)
        assert not np.array_equal(a.src, b.src)

    def test_ids_in_range(self):
        g = rmat(100, 2000, seed=3)  # non-power-of-two vertex count
        assert g.src.max() < 100
        assert g.dst.max() < 100
        assert g.src.min() >= 0

    def test_higher_skew_more_unequal_degrees(self):
        lo = rmat(1024, 8192, a=0.30, b=0.25, c=0.25, seed=5)
        hi = rmat(1024, 8192, a=0.70, b=0.10, c=0.10, seed=5)
        assert skew_gini(hi.out_degrees()) > skew_gini(lo.out_degrees())

    def test_no_self_loops_option(self):
        g = rmat(64, 1000, seed=7, allow_self_loops=False)
        assert (g.src != g.dst).all()

    def test_zero_edges(self):
        g = rmat(10, 0, seed=0)
        assert g.num_edges == 0

    def test_single_vertex(self):
        g = rmat(1, 5, seed=0)
        assert (g.src == 0).all() and (g.dst == 0).all()

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphError):
            rmat(0, 10)

    def test_rejects_negative_edges(self):
        with pytest.raises(GraphError):
            rmat(10, -1)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GraphError):
            rmat(10, 10, a=0.6, b=0.3, c=0.3)


class TestErdosRenyi:
    def test_sizes(self):
        g = erdos_renyi(50, 200, seed=0)
        assert g.num_vertices == 50
        assert g.num_edges == 200

    def test_deterministic(self):
        a = erdos_renyi(50, 100, seed=9)
        b = erdos_renyi(50, 100, seed=9)
        np.testing.assert_array_equal(a.src, b.src)

    def test_roughly_uniform_degrees(self):
        g = erdos_renyi(100, 10000, seed=1)
        assert skew_gini(g.out_degrees()) < 0.3


class TestStructured:
    def test_path(self):
        g = path(5)
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(3, 4)

    def test_path_single_vertex(self):
        assert path(1).num_edges == 0

    def test_cycle(self):
        g = cycle(4)
        assert g.num_edges == 4
        assert g.has_edge(3, 0)

    def test_cycle_empty(self):
        assert cycle(0).num_vertices == 0

    def test_star(self):
        g = star(6)
        assert g.num_vertices == 7
        assert (g.src == 0).all()
        assert g.out_degrees()[0] == 6

    def test_star_rejects_negative(self):
        with pytest.raises(GraphError):
            star(-1)

    def test_complete(self):
        g = complete(4)
        assert g.num_edges == 12
        assert (g.src != g.dst).all()

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.num_vertices == 12
        # (rows * (cols-1)) right edges + ((rows-1) * cols) down edges.
        assert g.num_edges == 3 * 3 + 2 * 4

    def test_grid_degenerate(self):
        assert grid_2d(1, 1).num_edges == 0
        assert grid_2d(0, 5).num_vertices == 0


class TestRandomWeights:
    def test_in_range(self, small_rmat):
        g = random_weights(small_rmat, 2.0, 5.0, seed=1)
        assert g.weights.min() >= 2.0
        assert g.weights.max() < 5.0

    def test_deterministic(self, small_rmat):
        a = random_weights(small_rmat, seed=4)
        b = random_weights(small_rmat, seed=4)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_rejects_empty_range(self, small_rmat):
        with pytest.raises(GraphError):
            random_weights(small_rmat, 5.0, 2.0)
