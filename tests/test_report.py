"""Tests for the energy report container."""

import pytest

from repro.arch.report import (
    ALL_COMPONENTS,
    BREAKDOWN_BUCKETS,
    EDGE_MEMORY,
    EnergyReport,
    LOGIC_BG,
    ONCHIP_VERTEX,
    PROCESSING,
    efficiency_ratio,
    geomean,
)
from repro.errors import ConfigError


@pytest.fixture
def report():
    r = EnergyReport(
        machine="m", algorithm="PR", graph="g",
        edges_traversed=1e9, iterations=10, time=0.5,
    )
    r.add(EDGE_MEMORY, 0.2)
    r.add(ONCHIP_VERTEX, 0.3)
    r.add(PROCESSING, 0.5)
    return r


class TestAccumulation:
    def test_add_accumulates(self, report):
        report.add(EDGE_MEMORY, 0.1)
        assert report.energy[EDGE_MEMORY] == pytest.approx(0.3)

    def test_total(self, report):
        assert report.total_energy == pytest.approx(1.0)

    def test_rejects_unknown_component(self, report):
        with pytest.raises(ConfigError):
            report.add("flux_capacitor", 1.0)

    def test_rejects_negative_energy(self, report):
        with pytest.raises(ConfigError):
            report.add(EDGE_MEMORY, -0.1)

    def test_every_component_in_exactly_one_bucket(self):
        bucketed = [
            c for components in BREAKDOWN_BUCKETS.values()
            for c in components
        ]
        assert sorted(bucketed) == sorted(ALL_COMPONENTS)


class TestMetrics:
    def test_memory_vs_logic_split(self, report):
        assert report.memory_energy == pytest.approx(0.5)
        assert report.logic_energy == pytest.approx(0.5)

    def test_mteps_per_watt(self, report):
        # 1e9 edges / 1 J / 1e6.
        assert report.mteps_per_watt == pytest.approx(1000.0)

    def test_mteps(self, report):
        assert report.mteps == pytest.approx(1e9 / 0.5 / 1e6)

    def test_edp(self, report):
        assert report.edp == pytest.approx(0.5)

    def test_breakdown_fractions(self, report):
        shares = report.breakdown()
        assert shares["Edge Memory"] == pytest.approx(0.2)
        assert shares["Vertex Memory"] == pytest.approx(0.3)
        assert shares["Other logic units"] == pytest.approx(0.5)

    def test_component_fraction(self, report):
        assert report.component_fraction(PROCESSING) == pytest.approx(0.5)
        assert report.component_fraction(LOGIC_BG) == 0.0

    def test_summary_mentions_key_fields(self, report):
        text = report.summary()
        assert "m" in text and "PR" in text and "MTEPS/W" in text

    def test_empty_report_breakdown_raises(self):
        empty = EnergyReport("m", "a", "g", 1.0, 1, 1.0)
        with pytest.raises(ConfigError):
            empty.breakdown()


class TestHelpers:
    def test_efficiency_ratio(self, report):
        other = EnergyReport("n", "PR", "g", 1e9, 10, 0.5)
        other.add(EDGE_MEMORY, 2.0)
        assert efficiency_ratio(report, other) == pytest.approx(2.0)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ConfigError):
            geomean([])

    def test_geomean_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            geomean([1.0, 0.0])
