"""Tests for the differential-conformance harness (repro.verify).

The expensive end-to-end fuzzing lives in CI's fuzz-smoke job
(``repro verify --seed 0 --cases 50``); here we pin down the machinery:
deterministic case generation, repro-file round-trips, the shrinker,
and — the acceptance path — a deliberately broken engine yielding a
shrunk, replayable repro file.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.verify.oracles as oracles_mod
from repro.cli import main
from repro.errors import VerificationError
from repro.verify import (
    ORACLES,
    Case,
    generate_cases,
    load_repro,
    replay_file,
    repro_record,
    run_oracle_on_case,
    run_verify,
    shrink_case,
    write_repro,
)
from repro.verify.cases import ALGORITHMS, GRAPH_KINDS

# Cheap oracles for end-to-end harness tests (no sweeps, no process
# pools) — the full registry runs in the CI fuzz-smoke job.
FAST_ORACLES = ["engine-identity", "scale-linearity"]

# A small case every fast oracle passes on (used as the replay fixture).
SMALL_CASE = Case(seed=7, graph_kind="erdos-renyi", num_vertices=16,
                  num_edges=40, algorithm="pr")


class TestCaseGeneration:
    def test_deterministic(self):
        assert generate_cases(7, 20) == generate_cases(7, 20)

    def test_seed_changes_cases(self):
        assert generate_cases(7, 20) != generate_cases(8, 20)

    def test_counts_and_validity(self):
        cases = generate_cases(0, 40)
        assert len(cases) == 40
        for case in cases:
            assert case.graph_kind in GRAPH_KINDS
            assert case.algorithm in ALGORITHMS
            assert case.num_vertices >= 2
            assert case.num_edges >= 1

    def test_negative_count_rejected(self):
        with pytest.raises(VerificationError):
            generate_cases(0, -1)

    def test_graph_is_deterministic(self):
        a, b = SMALL_CASE.graph(), SMALL_CASE.graph()
        assert (a.src == b.src).all() and (a.dst == b.dst).all()


class TestCaseSerialisation:
    def test_json_roundtrip(self):
        for case in generate_cases(3, 10):
            rebuilt = Case.from_dict(json.loads(json.dumps(case.to_dict())))
            assert rebuilt == case

    def test_unknown_field_rejected(self):
        data = SMALL_CASE.to_dict()
        data["bogus"] = 1
        with pytest.raises(VerificationError, match="bogus"):
            Case.from_dict(data)

    def test_invalid_kind_rejected(self):
        with pytest.raises(VerificationError, match="graph kind"):
            Case(graph_kind="torus")

    def test_describe_mentions_knobs(self):
        case = dataclasses.replace(SMALL_CASE, sram_kb=256,
                                   edge_scale_exp=2)
        text = case.describe()
        assert "sram_kb=256" in text and "2^2e" in text


class TestRegistry:
    def test_expected_oracles_registered(self):
        expected = {
            "engine-identity", "sweep-identity", "parallel-sweep",
            "algorithm-equivalence", "permutation-invariance",
            "interval-invariance", "scale-linearity", "zero-fault",
        }
        assert expected <= set(ORACLES)

    def test_entries_consistent(self):
        for name, oracle in ORACLES.items():
            assert oracle.name == name
            assert oracle.description
            assert oracle.stride >= 1

    def test_unknown_oracle_rejected(self):
        from repro.verify import get_oracles

        with pytest.raises(VerificationError, match="unknown oracle"):
            get_oracles(["nonsense"])


class TestShrink:
    def test_shrinks_to_minimal_failing_case(self):
        start = Case(seed=1, num_vertices=64, num_edges=256,
                     algorithm="pr", machine="acc+HyVE",
                     sram_kb=256, region_hit_rate=0.85,
                     vertex_scale_exp=2, weighted=True)
        # Synthetic defect: anything with >= 4 vertices "fails".
        shrunk, evals = shrink_case(start, lambda c: c.num_vertices >= 4)
        assert shrunk.num_vertices == 4
        assert shrunk.sram_kb is None
        assert shrunk.region_hit_rate is None
        assert shrunk.vertex_scale_exp == 0
        assert not shrunk.weighted
        assert shrunk.machine == "acc+HyVE-opt"
        assert evals <= 48

    def test_unshrinkable_case_returned_unchanged(self):
        start = Case(seed=1, num_vertices=8, num_edges=16)
        shrunk, _ = shrink_case(start, lambda c: c == start)
        assert shrunk == start

    def test_budget_respected(self):
        start = Case(seed=1, num_vertices=256, num_edges=1024)
        _, evals = shrink_case(start, lambda c: True, max_evals=5)
        assert evals == 5


class TestHarness:
    @pytest.mark.fuzz
    def test_run_verify_green(self, tmp_path):
        summary = run_verify(seed=11, cases=2, oracle_names=FAST_ORACLES,
                             failures_dir=tmp_path / "failures")
        assert summary.ok
        assert summary.evaluations == 2 * len(FAST_ORACLES)
        # No failures -> no repro files, the directory is never created.
        assert not (tmp_path / "failures").exists()
        text = summary.format()
        assert "OK" in text and "engine-identity" in text

    def test_oracle_passes_on_small_case(self):
        assert run_oracle_on_case(ORACLES["engine-identity"],
                                  SMALL_CASE) is None

    @pytest.mark.fuzz
    def test_broken_engine_yields_shrunk_replayable_repro(
        self, tmp_path, monkeypatch
    ):
        """The ISSUE acceptance path: a seeded, deliberately broken
        engine must produce a shrunk repro file that replays FAIL while
        the defect is present and PASS once it is fixed."""
        real_fold_many = oracles_mod.fold_many

        def broken_fold_many(*args, **kwargs):
            reports = real_fold_many(*args, **kwargs)
            return [dataclasses.replace(r, time=r.time * 1.5)
                    for r in reports]

        with monkeypatch.context() as patch:
            patch.setattr(oracles_mod, "fold_many", broken_fold_many)
            summary = run_verify(
                seed=0, cases=4, oracle_names=["engine-identity"],
                failures_dir=tmp_path, max_failures=1,
            )
            assert not summary.ok
            failure = summary.failures[0]
            assert failure.oracle == "engine-identity"
            assert "fold_many" in failure.error
            # Shrunk: no bigger than the original along every axis.
            assert failure.case.num_vertices <= failure.original.num_vertices
            assert failure.case.num_edges <= failure.original.num_edges
            assert failure.path is not None and failure.path.exists()
            # Replay while broken -> still FAIL, same oracle.
            replayed = replay_file(failure.path)
            assert not replayed.ok
            assert replayed.case == failure.case
        # Defect "fixed" (patch undone) -> the same file replays green.
        assert replay_file(failure.path).ok


class TestReproFiles:
    def test_roundtrip(self, tmp_path):
        record = repro_record("engine-identity", SMALL_CASE,
                              "boom", shrink_evals=3, note="example")
        path = write_repro(tmp_path / "r.json", record)
        oracle, case, loaded = load_repro(path)
        assert oracle == "engine-identity"
        assert case == SMALL_CASE
        assert loaded["note"] == "example"
        assert loaded["shrink_evals"] == 3

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "not-a-repro"}))
        with pytest.raises(VerificationError, match="schema"):
            load_repro(path)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(VerificationError, match="unreadable"):
            load_repro(path)


class TestCli:
    def test_list(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ORACLES:
            assert name in out

    @pytest.mark.fuzz
    def test_run_green(self, tmp_path, capsys):
        assert main([
            "verify", "--seed", "11", "--cases", "1",
            "--oracle", "engine-identity",
            "--failures-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "OK: 1 oracle evaluation(s)" in out

    def test_replay_pass_and_fail(self, tmp_path, capsys):
        good = write_repro(
            tmp_path / "good.json",
            repro_record("engine-identity", SMALL_CASE, "historical"),
        )
        assert main(["verify", "--replay", str(good)]) == 0
        assert "PASS" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        # Malformed repro files route through the CLI error path.
        assert main(["verify", "--replay", str(bad)]) == 2
