"""Unit tests for the crash-safe SQLite result store.

Covers checksummed round-trips, quarantine-on-corruption, LRU size
budgeting, provenance columns, verify/vacuum maintenance, legacy-file
migration, orphaned-tmp cleanup and the busy-retry loop.  The
multi-process stress and kill-mid-write scenarios live in
tests/test_store_stress.py and tests/test_crash_consistency.py.
"""

import json
import sqlite3
import time

import pytest

from repro.errors import StoreError
from repro.obs import metrics as obs_metrics
from repro.perf.store import (
    SQLiteStore,
    clean_orphan_tmp,
    payload_checksum,
)


@pytest.fixture
def store(tmp_path):
    return SQLiteStore(tmp_path / "cache")


class TestRoundTrip:
    def test_get_put_roundtrip(self, store):
        store.put("k", b"payload-bytes", kind="run")
        assert store.get("k") == b"payload-bytes"

    def test_missing_key_is_none(self, store):
        assert store.get("absent") is None

    def test_replace_overwrites(self, store):
        store.put("k", b"old", kind="run")
        store.put("k", b"new", kind="run")
        assert store.get("k") == b"new"
        assert store.entry_count() == 1

    def test_fresh_instance_reads_entries(self, tmp_path):
        SQLiteStore(tmp_path / "cache").put("k", b"x" * 100, kind="run")
        reader = SQLiteStore(tmp_path / "cache")
        assert reader.get("k") == b"x" * 100

    def test_delete(self, store):
        store.put("k", b"x", kind="run")
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k") is None

    def test_keys_filter_by_kind(self, store):
        store.put("a", b"1", kind="run")
        store.put("b", b"2", kind="scalar")
        assert store.keys() == ["a", "b"]
        assert store.keys(kind="scalar") == ["b"]

    def test_clear_returns_count_and_wipes_quarantine(self, store):
        store.put("a", b"1", kind="run")
        store.put("b", b"2", kind="run")
        store.corrupt_bit("a", 0)
        assert store.get("a") is None  # quarantined
        assert store.clear() == 1  # only b is still a live entry
        assert store.entry_count() == 0
        assert store.quarantine_count() == 0


class TestProvenance:
    def test_entry_rows_carry_provenance(self, store, tmp_path):
        store.salt = "vX"
        before = time.time()
        store.put("k", b"data", kind="counts", seed=42)
        conn = sqlite3.connect(tmp_path / "cache" / "store.sqlite")
        row = conn.execute(
            "SELECT kind, checksum, size, salt, seed, created_at, "
            "last_used_at FROM entries WHERE key='k'"
        ).fetchone()
        conn.close()
        kind, checksum, size, salt, seed, created, used = row
        assert kind == "counts"
        assert checksum == payload_checksum(b"data")
        assert size == 4
        assert salt == "vX"
        assert seed == 42
        assert created >= before - 1 and used >= before - 1

    def test_read_touches_recency(self, store):
        store.put("k", b"data", kind="run")
        conn = store._connection()
        conn.execute("UPDATE entries SET last_used_at=0 WHERE key='k'")
        conn.commit()
        store.get("k")
        touched = conn.execute(
            "SELECT last_used_at FROM entries WHERE key='k'"
        ).fetchone()[0]
        assert touched > 0


class TestQuarantine:
    def test_corrupt_entry_quarantined_not_served(self, store):
        store.put("k", b"a" * 64, kind="run")
        assert store.corrupt_bit("k", 13)
        registry = obs_metrics.get_metrics()
        before = registry.counter(obs_metrics.STORE_QUARANTINED).value
        assert store.get("k") is None
        assert store.entry_count() == 0
        assert store.quarantine_count() == 1
        after = registry.counter(obs_metrics.STORE_QUARANTINED).value
        assert after == before + 1

    def test_recompute_after_quarantine_round_trips(self, store):
        store.put("k", b"a" * 64, kind="run")
        store.corrupt_bit("k", 7)
        assert store.get("k") is None
        store.put("k", b"a" * 64, kind="run")  # the "recompute"
        assert store.get("k") == b"a" * 64

    def test_quarantine_row_records_checksums(self, store, tmp_path):
        store.put("k", b"b" * 32, kind="scalar")
        store.corrupt_bit("k", 3)
        store.get("k")
        conn = sqlite3.connect(tmp_path / "cache" / "store.sqlite")
        row = conn.execute(
            "SELECT key, kind, checksum_expected, checksum_actual, "
            "reason FROM quarantine"
        ).fetchone()
        conn.close()
        assert row[0] == "k"
        assert row[1] == "scalar"
        assert row[2] == payload_checksum(b"b" * 32)
        assert row[2] != row[3]
        assert "checksum" in row[4]


class TestEviction:
    def test_lru_eviction_under_budget(self, tmp_path):
        store = SQLiteStore(tmp_path / "cache", max_bytes=250)
        for i in range(5):
            store.put(f"k{i}", bytes(100), kind="run")
            store.get(f"k{i}")
        # 5 x 100 B against a 250 B budget: only the two most recently
        # used entries survive.
        assert store.total_bytes() <= 250
        assert store.get("k4") is not None
        assert store.get("k0") is None

    def test_recently_read_entry_survives(self, tmp_path):
        store = SQLiteStore(tmp_path / "cache", max_bytes=250)
        store.put("a", bytes(100), kind="run")
        store.put("b", bytes(100), kind="run")
        time.sleep(0.01)
        store.get("a")  # refresh a's recency past b's
        store.put("c", bytes(100), kind="run")  # evicts exactly one
        assert store.get("a") is not None
        assert store.get("b") is None

    def test_oversized_entry_is_kept_not_thrashed(self, tmp_path):
        store = SQLiteStore(tmp_path / "cache", max_bytes=50)
        store.put("big", bytes(200), kind="run")
        assert store.get("big") is not None

    def test_eviction_metric_counted(self, tmp_path):
        registry = obs_metrics.get_metrics()
        before = registry.counter(obs_metrics.STORE_EVICTIONS).value
        store = SQLiteStore(tmp_path / "cache", max_bytes=150)
        store.put("a", bytes(100), kind="run")
        time.sleep(0.01)
        store.put("b", bytes(100), kind="run")
        after = registry.counter(obs_metrics.STORE_EVICTIONS).value
        assert after == before + 1

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            SQLiteStore(tmp_path / "cache", max_bytes=0)


class TestVerifyVacuum:
    def test_verify_clean_store(self, store):
        store.put("a", b"1", kind="run")
        store.put("b", b"2", kind="run")
        report = store.verify()
        assert report.clean
        assert report.entries == 2 and report.ok == 2

    def test_verify_quarantines_corruption(self, store):
        store.put("a", b"fine", kind="run")
        store.put("b", b"x" * 64, kind="run")
        store.corrupt_bit("b", 100)
        report = store.verify()
        assert not report.clean
        assert report.quarantined == ["b"]
        assert store.entry_count() == 1
        assert "quarantined" in report.format()

    def test_vacuum_drops_quarantine(self, store):
        store.put("a", b"x" * 64, kind="run")
        store.corrupt_bit("a", 0)
        store.get("a")
        assert store.quarantine_count() == 1
        result = store.vacuum()
        assert result["quarantine_dropped"] == 1
        assert store.quarantine_count() == 0


class TestSchemaGuard:
    def test_newer_schema_refused(self, tmp_path):
        SQLiteStore(tmp_path / "cache")
        conn = sqlite3.connect(tmp_path / "cache" / "store.sqlite")
        conn.execute("UPDATE meta SET value='999' "
                     "WHERE name='schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="newer"):
            SQLiteStore(tmp_path / "cache")


class TestTmpCleanup:
    def test_open_removes_stale_tmp(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        stale = directory / "half-written.npz.tmp"
        stale.write_bytes(b"garbage")
        import os
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = directory / "in-flight.npz.tmp"
        fresh.write_bytes(b"maybe live")
        registry = obs_metrics.get_metrics()
        before = registry.counter(obs_metrics.STORE_TMP_CLEANED).value
        SQLiteStore(directory)
        assert not stale.exists()
        assert fresh.exists()  # young: may belong to a live writer
        after = registry.counter(obs_metrics.STORE_TMP_CLEANED).value
        assert after == before + 1

    def test_clean_orphan_tmp_unbounded_age(self, tmp_path):
        (tmp_path / "a.tmp").write_bytes(b"1")
        (tmp_path / "b.tmp").write_bytes(b"2")
        assert clean_orphan_tmp(tmp_path, max_age_s=None) == 2
        assert clean_orphan_tmp(tmp_path, max_age_s=None) == 0

    def test_missing_directory_is_zero(self, tmp_path):
        assert clean_orphan_tmp(tmp_path / "absent") == 0


class _FlakyConn:
    """Connection proxy whose ``execute`` fails with a chosen error for
    the first ``failures`` calls matching ``match`` (sqlite3.Connection
    attributes are read-only, so monkeypatching needs a wrapper)."""

    def __init__(self, real, match, failures, message):
        self._real = real
        self._match = match
        self._failures = failures
        self._message = message
        self.calls = 0

    def execute(self, sql, *args):
        if sql.startswith(self._match):
            self.calls += 1
            if self.calls <= self._failures:
                raise sqlite3.OperationalError(self._message)
        return self._real.execute(sql, *args)

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestBusyRetry:
    def _install(self, store, monkeypatch, match, failures, message):
        proxy = _FlakyConn(store._connection(), match, failures, message)
        monkeypatch.setattr(store, "_connection", lambda: proxy)
        return proxy

    def test_transient_busy_absorbed(self, store, monkeypatch):
        self._install(store, monkeypatch, "INSERT OR REPLACE", 2,
                      "database is locked")
        registry = obs_metrics.get_metrics()
        before = registry.counter(obs_metrics.STORE_BUSY_RETRIES).value
        store.put("k", b"data", kind="run")
        after = registry.counter(obs_metrics.STORE_BUSY_RETRIES).value
        assert store.get("k") == b"data"
        assert after == before + 2

    def test_persistent_busy_raises(self, store, monkeypatch):
        self._install(store, monkeypatch, "INSERT OR REPLACE", 10_000,
                      "database is locked")
        with pytest.raises(sqlite3.OperationalError):
            store.put("k", b"data", kind="run")

    def test_non_busy_error_not_retried(self, store, monkeypatch):
        proxy = self._install(store, monkeypatch, "INSERT OR REPLACE",
                              10_000, "no such table: entries")
        with pytest.raises(sqlite3.OperationalError):
            store.put("k", b"data", kind="run")
        assert proxy.calls == 1


class TestMigration:
    def test_migrates_all_legacy_kinds(self, tmp_path, monkeypatch):
        import io

        import numpy as np

        directory = tmp_path / "cache"
        directory.mkdir()
        buffer = io.BytesIO()
        np.savez(buffer, meta=np.asarray(json.dumps({"algorithm": "pr"})),
                 values=np.arange(4.0),
                 active_sources=np.asarray([], dtype=np.int64))
        (directory / "abc123.npz").write_bytes(buffer.getvalue())
        (directory / "scalar-d4.json").write_text(
            json.dumps({"name": "s", "value": 1.5, "salt": "v"}))
        (directory / "counts-e5.json").write_text(
            json.dumps({"key": "k", "salt": "v", "counts": {}}))
        (directory / "leftover.tmp").write_bytes(b"x")
        store = SQLiteStore(directory)
        report = store.migrate_from_files()
        assert report.migrated == 3
        assert report.skipped == []
        assert report.tmp_removed == 1
        assert store.get("abc123") == buffer.getvalue()
        assert store.keys(kind="scalar") == ["scalar-d4"]
        assert store.keys(kind="counts") == ["counts-e5"]
        # Sources are gone: re-running converges to a no-op.
        assert not list(directory.glob("*.npz"))
        assert not list(directory.glob("*.json"))
        again = store.migrate_from_files()
        assert again.migrated == 0

    def test_batched_sweep_byte_identical_on_migrated_store(
        self, tmp_path
    ):
        """The acceptance bar for migration: sweep CSV and checkpoint
        outputs from a store populated via legacy-file migration are
        byte-identical to those from a freshly computed store."""
        from repro.algorithms import PageRank
        from repro.arch.sweep import SweepPolicy, points_to_csv, sweep
        from repro.graph import rmat
        from repro.perf.cache import RunCache, temporary_run_cache

        graph = rmat(64, 256, seed=5, name="mig-rmat")
        values = [0.25, 0.75, 1.0]

        def run_sweep(directory, ckpt):
            with temporary_run_cache(directory):
                points = sweep(
                    "region_hit_rate", values, PageRank, graph,
                    policy=SweepPolicy(checkpoint_path=ckpt),
                )
            return points_to_csv(points)

        fresh_dir = tmp_path / "fresh"
        baseline_csv = run_sweep(fresh_dir, tmp_path / "a.jsonl")

        # Export the fresh store's entries into the legacy
        # file-per-entry layout, then migrate them back in.
        legacy_dir = tmp_path / "legacy"
        legacy_dir.mkdir()
        source = SQLiteStore(fresh_dir)
        exported = 0
        for kind, suffix in (("run", ".npz"), ("scalar", ".json"),
                             ("counts", ".json")):
            for key in source.keys(kind=kind):
                (legacy_dir / f"{key}{suffix}").write_bytes(
                    source.get(key)
                )
                exported += 1
        assert exported >= 1
        cache = RunCache(directory=legacy_dir)
        report = cache.migrate()
        assert report.migrated == exported
        assert report.skipped == []

        migrated_csv = run_sweep(legacy_dir, tmp_path / "b.jsonl")
        assert migrated_csv == baseline_csv
        assert ((tmp_path / "b.jsonl").read_bytes()
                == (tmp_path / "a.jsonl").read_bytes())

    def test_corrupt_legacy_file_skipped_and_renamed(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        (directory / "bad.npz").write_bytes(b"not a zip at all")
        (directory / "scalar-bad.json").write_text("{truncated")
        store = SQLiteStore(directory)
        report = store.migrate_from_files()
        assert report.migrated == 0
        assert sorted(report.skipped) == ["bad.npz", "scalar-bad.json"]
        assert (directory / "bad.npz.corrupt").exists()
        assert (directory / "scalar-bad.json.corrupt").exists()
        assert "skipped" in report.format()
