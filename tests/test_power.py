"""Tests for the power-over-time profile."""

import pytest

from repro.algorithms import BFS, PageRank
from repro.arch.config import HyVEConfig, MemoryTechnology
from repro.arch.phases import PhaseKind
from repro.arch.power import power_profile
from repro.graph import rmat
from repro.memory.powergate import PowerGatingPolicy


@pytest.fixture(scope="module")
def graph():
    return rmat(2048, 16384, seed=101, name="power")


@pytest.fixture(scope="module")
def profile(graph):
    return power_profile(PageRank(), graph, HyVEConfig(num_intervals=16))


class TestProfile:
    def test_positive_and_bounded(self, profile):
        assert 0 < profile.average_power <= profile.peak_power

    def test_samples_cover_schedule(self, profile):
        kinds = {s.phase.kind for s in profile.samples}
        assert kinds == set(PhaseKind)

    def test_processing_draws_most_power(self, profile):
        by_kind = profile.by_kind()
        assert by_kind["Processing"] == max(by_kind.values())

    def test_background_never_negative(self, profile):
        assert all(s.background_power > 0 for s in profile.samples)
        assert all(s.dynamic_power >= 0 for s in profile.samples)


class TestGatingVisibleInPower:
    def test_gating_lowers_average_power(self, graph):
        gated = power_profile(PageRank(), graph,
                              HyVEConfig(num_intervals=16))
        ungated = power_profile(
            PageRank(), graph,
            HyVEConfig(label="npg", num_intervals=16,
                       power_gating=PowerGatingPolicy(enabled=False)),
        )
        assert gated.average_power < ungated.average_power

    def test_hyve_draws_less_than_sd(self, graph):
        hyve = power_profile(PageRank(), graph,
                             HyVEConfig(num_intervals=16))
        sd = power_profile(
            PageRank(), graph,
            HyVEConfig(label="sd", num_intervals=16,
                       edge_memory=MemoryTechnology.DRAM,
                       power_gating=PowerGatingPolicy(enabled=False)),
        )
        assert hyve.average_power < sd.average_power
        assert hyve.peak_power <= sd.peak_power

    def test_bfs_profile_works(self, graph):
        profile = power_profile(BFS(0), graph,
                                HyVEConfig(num_intervals=16))
        assert profile.average_power > 0
