"""Multi-process stress test for the SQLite result store.

Eight processes hammer one store concurrently — mixed readers, writers
and a size-budgeted evictor — and the acceptance bar is *zero corrupted
reads and zero deadlocks*: every ``get`` returns either ``None`` (miss
or evicted) or the exact payload deterministically derived from the
key.  Torn or interleaved data of any kind is a hard failure.
"""

import multiprocessing
import sys

import pytest

from repro.perf.store import SQLiteStore

WORKERS = 8
KEYS = 24
OPS_PER_WORKER = 60
TIMEOUT_S = 120


def _payload_for(key: str, version: int) -> bytes:
    """The only valid payload for ``key`` at ``version`` — any read
    must return one of these exactly, or the store tore a write."""
    seed = (hash_str(key) * 1_000_003 + version) & 0xFFFFFFFF
    out = bytearray()
    state = seed or 1
    for _ in range(256 + (seed % 512)):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(state & 0xFF)
    return bytes(out)


def hash_str(text: str) -> int:
    """Deterministic (non-PYTHONHASHSEED) string hash."""
    value = 2166136261
    for ch in text.encode():
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    return value


def _worker(worker_id: int, directory: str, queue) -> None:
    """Mixed read/write/evict traffic; reports corruption via queue."""
    try:
        # Workers 0-5 run unbounded; 6-7 carry a tight byte budget so
        # their writes force LRU evictions under everyone else's feet.
        max_bytes = 8_192 if worker_id >= 6 else None
        store = SQLiteStore(directory, max_bytes=max_bytes)
        corrupt = 0
        reads = writes = 0
        for op in range(OPS_PER_WORKER):
            key = f"key-{(worker_id * 7 + op * 5) % KEYS}"
            version = (worker_id + op) % 3
            if (worker_id + op) % 3 == 0:
                store.put(key, _payload_for(key, version), kind="run",
                          seed=version)
                writes += 1
            else:
                payload = store.get(key)
                reads += 1
                if payload is not None:
                    valid = any(payload == _payload_for(key, v)
                                for v in range(3))
                    if not valid:
                        corrupt += 1
        queue.put(("ok", worker_id, reads, writes, corrupt))
    except BaseException as exc:  # report, don't hang the parent
        queue.put(("error", worker_id, type(exc).__name__, str(exc), 1))


@pytest.mark.slow
def test_eight_process_mixed_traffic_no_corruption(tmp_path):
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    directory = str(tmp_path / "store")
    procs = [
        ctx.Process(target=_worker, args=(i, directory, queue))
        for i in range(WORKERS)
    ]
    for p in procs:
        p.start()
    results = []
    for _ in procs:
        # A worker that never reports means a deadlock: fail, not hang.
        results.append(queue.get(timeout=TIMEOUT_S))
    for p in procs:
        p.join(timeout=TIMEOUT_S)
        assert p.exitcode == 0
    errors = [r for r in results if r[0] == "error"]
    assert not errors, f"worker(s) crashed: {errors}"
    total_reads = sum(r[2] for r in results)
    total_corrupt = sum(r[4] for r in results)
    assert total_reads > 0
    assert total_corrupt == 0, (
        f"{total_corrupt} corrupted read(s) out of {total_reads}"
    )
    # The store must still be coherent afterwards.
    survivor = SQLiteStore(directory)
    report = survivor.verify()
    assert report.clean, report.format()


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
