"""Replay the committed repro corpus (tests/corpus/*.json).

Every file is a shrunk, historical (or deliberately injected) failure
whose execution path the suite now guarantees — see
docs/verification.md for the corpus workflow.  A file that fails here
means a previously fixed defect has regressed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify import REPRO_SCHEMA, corpus_files, load_repro, replay_file

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = corpus_files(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CORPUS, f"expected committed repro files under {CORPUS_DIR}"


@pytest.mark.corpus
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_file_replays_green(path):
    oracle, case, record = load_repro(path)
    assert record["schema"] == REPRO_SCHEMA
    assert record.get("note"), f"{path.name} should document its defect"
    result = replay_file(path)
    assert result.ok, (
        f"regression: {oracle} fails again on {case.describe()}:\n"
        f"  {result.error}\n"
        f"original defect: {record['note']}"
    )
