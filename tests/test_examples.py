"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "MTEPS/W" in out
    assert "more energy-efficient" in out


def test_phase_timeline():
    out = run_example("phase_timeline.py")
    assert "Processing" in out
    assert "Loading" in out


def test_social_network_analytics():
    out = run_example("social_network_analytics.py")
    assert "top influencers" in out
    assert "energy saving vs CPU" in out


def test_design_space_exploration():
    out = run_example("design_space_exploration.py")
    assert "SRAM capacity" in out
    assert "SLC" in out


def test_dynamic_stream():
    out = run_example("dynamic_stream.py")
    assert "link changes" in out
    assert "re-rank" in out


def test_paper_figures_selection():
    out = run_example("paper_figures.py", "table3", "fig09")
    assert "table3" in out
    assert "fig09" in out


def test_paper_figures_rejects_unknown():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "paper_figures.py"), "fig99"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
