"""Tests for graph shape statistics (Table 1 machinery)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph, complete, star
from repro.graph.stats import (
    CROSSBAR_DIM,
    DegreeStats,
    GraphShape,
    average_edges_per_nonempty_block,
    block_occupancy_histogram,
    fixed_block_keys,
    nonempty_block_count,
    skew_gini,
)


class TestBlockKeys:
    def test_same_tile_same_key(self):
        g = Graph.from_edges(16, [(0, 1), (2, 3), (8, 9)])
        keys = fixed_block_keys(g)
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_rejects_bad_block_size(self, tiny_graph):
        with pytest.raises(GraphError):
            fixed_block_keys(tiny_graph, 0)


class TestNonemptyBlocks:
    def test_empty_graph(self):
        assert nonempty_block_count(Graph.empty(64)) == 0

    def test_single_tile(self):
        g = Graph.from_edges(8, [(0, 1), (2, 3), (7, 7)])
        assert nonempty_block_count(g) == 1

    def test_dense_tile_block(self):
        g = complete(8)  # fits exactly one 8x8 tile
        assert nonempty_block_count(g) == 1
        assert average_edges_per_nonempty_block(g) == 56.0

    def test_spread_star(self):
        g = star(63)  # hub 0 -> leaves 1..63 spread over 8 tile columns
        assert nonempty_block_count(g) == 8

    def test_custom_block_size(self):
        g = Graph.from_edges(8, [(0, 1), (4, 5)])
        assert nonempty_block_count(g, block_size=4) == 2
        assert nonempty_block_count(g, block_size=8) == 1


class TestNavg:
    def test_empty(self):
        assert average_edges_per_nonempty_block(Graph.empty(10)) == 0.0

    def test_definition(self, medium_rmat):
        navg = average_edges_per_nonempty_block(medium_rmat)
        blocks = nonempty_block_count(medium_rmat)
        assert navg == pytest.approx(medium_rmat.num_edges / blocks)

    def test_at_least_one_for_nonempty(self, small_rmat):
        assert average_edges_per_nonempty_block(small_rmat) >= 1.0

    def test_at_most_tile_capacity_times_duplicates(self):
        g = complete(8)
        assert average_edges_per_nonempty_block(g) <= 64.0


class TestHistogram:
    def test_sums_to_edge_count(self, small_rmat):
        hist = block_occupancy_histogram(small_rmat)
        total = sum(k * count for k, count in enumerate(hist))
        assert total == small_rmat.num_edges

    def test_index_zero_empty(self, small_rmat):
        assert block_occupancy_histogram(small_rmat)[0] == 0

    def test_empty_graph(self):
        assert block_occupancy_histogram(Graph.empty(8)).tolist() == [0]


class TestDegreeStats:
    def test_of_uniform(self):
        stats = DegreeStats.of(np.full(10, 3))
        assert stats.mean == 3.0
        assert stats.maximum == 3
        assert stats.zeros == 0

    def test_of_empty(self):
        stats = DegreeStats.of(np.empty(0, dtype=int))
        assert stats.mean == 0.0

    def test_zeros_counted(self):
        stats = DegreeStats.of(np.array([0, 0, 5]))
        assert stats.zeros == 2


class TestGini:
    def test_uniform_is_zero(self):
        assert skew_gini(np.full(100, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_star_is_high(self):
        degrees = star(100).out_degrees()
        assert skew_gini(degrees) > 0.9

    def test_empty(self):
        assert skew_gini(np.empty(0)) == 0.0

    def test_bounded(self, medium_rmat):
        g = skew_gini(medium_rmat.out_degrees())
        assert 0.0 <= g <= 1.0


class TestGraphShape:
    def test_snapshot(self, tiny_graph):
        shape = GraphShape.of(tiny_graph)
        assert shape.num_vertices == 8
        assert shape.num_edges == 11
        assert shape.navg > 0
        assert shape.nonempty_8x8_blocks >= 1
        assert CROSSBAR_DIM == 8
