"""Tests for hash-based vertex placement (Section 4.3)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import Graph, HashPlacement, hash_partition, imbalance, rmat


class TestHashPlacement:
    def test_forward_is_permutation(self, small_rmat):
        placement = HashPlacement.for_graph(small_rmat)
        fwd = placement.forward()
        assert sorted(fwd.tolist()) == list(range(small_rmat.num_vertices))

    def test_inverse_undoes_forward(self, small_rmat):
        placement = HashPlacement.for_graph(small_rmat)
        fwd, inv = placement.forward(), placement.inverse()
        np.testing.assert_array_equal(
            inv[fwd], np.arange(small_rmat.num_vertices)
        )

    def test_multiplier_coprime(self):
        # num_vertices sharing factors with the default multiplier.
        g = rmat(2_654_435_761 % 1000 + 1000, 100, seed=0)
        placement = HashPlacement.for_graph(g)
        import math

        assert math.gcd(placement.multiplier, g.num_vertices) == 1

    def test_apply_preserves_structure(self, tiny_graph):
        placement = HashPlacement.for_graph(tiny_graph)
        hashed = placement.apply(tiny_graph)
        assert hashed.num_edges == tiny_graph.num_edges
        assert hashed.out_degrees().sum() == tiny_graph.num_edges

    def test_restore_roundtrip(self, tiny_graph):
        placement = HashPlacement.for_graph(tiny_graph)
        hashed_values = np.arange(8, dtype=float)[placement.inverse()]
        restored = placement.restore(hashed_values)
        np.testing.assert_array_equal(restored, np.arange(8, dtype=float))

    def test_restore_rejects_wrong_length(self, tiny_graph):
        placement = HashPlacement.for_graph(tiny_graph)
        with pytest.raises(PartitionError):
            placement.restore(np.zeros(3))

    def test_rejects_empty_graph(self):
        with pytest.raises(PartitionError):
            HashPlacement.for_graph(Graph.empty(0))


class TestHashPartition:
    def test_returns_partition_of_hashed_graph(self, medium_rmat):
        part, placement = hash_partition(medium_rmat, 16)
        assert part.num_intervals == 16
        assert part.graph.num_edges == medium_rmat.num_edges

    def test_balances_skewed_graphs(self):
        g = rmat(4096, 32768, a=0.7, b=0.1, c=0.1, seed=3)
        natural = __import__(
            "repro.graph.partition", fromlist=["IntervalBlockPartition"]
        ).IntervalBlockPartition.build(g, 32)
        hashed, _ = hash_partition(g, 32)
        assert imbalance(hashed, 8) <= imbalance(natural, 8)


class TestImbalance:
    def test_at_least_one(self, medium_rmat):
        part, _ = hash_partition(medium_rmat, 16)
        assert imbalance(part, 8) >= 1.0

    def test_empty_graph_is_balanced(self):
        from repro.graph.partition import IntervalBlockPartition

        part = IntervalBlockPartition.build(Graph.empty(16), 8)
        assert imbalance(part, 4) == 1.0

    def test_single_pu_is_balanced(self, medium_rmat):
        part, _ = hash_partition(medium_rmat, 16)
        assert imbalance(part, 1) == pytest.approx(1.0)
