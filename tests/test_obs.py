"""Observability layer: tracer schema, disabled-path cost, metrics."""

from __future__ import annotations

import io
import json
import threading
import tracemalloc

import pytest

from repro.arch.config import Workload
from repro.arch.machine import AcceleratorMachine
from repro.arch.report import ALL_COMPONENTS
from repro.arch.sweep import SweepPolicy, sweep
from repro.algorithms import PageRank
from repro.graph import rmat
from repro.obs import (
    COMPONENT_PHASE,
    NULL_SPAN,
    PHASES,
    MetricsRegistry,
    TraceError,
    Tracer,
    fold_records,
    format_attribution,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import read_trace, validate_record


@pytest.fixture
def fresh_obs():
    """Isolate process-wide tracer/registry state per test."""
    set_tracer(None)
    set_metrics(None)
    yield
    set_tracer(None)
    set_metrics(None)


@pytest.fixture
def small_workload():
    return Workload(rmat(256, 1024, seed=11, name="obs-rmat"))


class TestTraceRoundTrip:
    def test_file_round_trip_validates(self, tmp_path, fresh_obs):
        path = tmp_path / "t.jsonl"
        tracer = Tracer()
        tracer.start(path)
        with tracer.span("outer", machine="m"):
            tracer.event("ping", n=1)
            with tracer.span("inner"):
                pass
        tracer.stop()
        records = read_trace(path)
        kinds = [r["kind"] for r in records]
        assert kinds == ["meta", "event", "span", "span"]
        header = records[0]
        assert header["schema"] == "hyve-trace-v1"
        # Spans are emitted on exit: inner precedes outer, and nesting
        # is recoverable through parent ids.
        inner, outer = records[2], records[3]
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert records[1]["parent"] == outer["id"]
        for span in (inner, outer):
            assert span["t_end"] >= span["t_start"] >= 0.0
            assert span["dur"] == pytest.approx(
                span["t_end"] - span["t_start"]
            )

    def test_machine_run_trace_is_schema_valid(self, tmp_path, fresh_obs,
                                               small_workload):
        path = tmp_path / "run.jsonl"
        tracer = get_tracer()
        tracer.start(path)
        report = AcceleratorMachine().run(
            PageRank(), small_workload
        ).report
        tracer.stop()
        records = read_trace(path)  # validates every line
        names = {r["name"] for r in records if r["kind"] != "meta"}
        assert {"machine.run", "schedule.counts", "fold"} <= names
        attribution = fold_records(records)
        assert attribution.reports, "machine run must emit a report event"
        assert attribution.total_time_s == pytest.approx(
            report.time, rel=1e-9
        )
        assert attribution.total_energy_j == pytest.approx(
            report.total_energy, rel=1e-9
        )
        table = format_attribution(attribution)
        assert "stream" in table and "background" in table

    def test_rejects_foreign_schema_and_truncation(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({
            "schema": "hyve-trace-v99", "kind": "meta",
            "wall_time_unix": 0.0, "pid": 1,
        }) + "\n")
        with pytest.raises(TraceError, match="schema"):
            read_trace(path)
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace(path)

    def test_validate_record_requires_fields(self):
        with pytest.raises(TraceError, match="missing"):
            validate_record({"kind": "span", "name": "x"})
        with pytest.raises(TraceError, match="kind"):
            validate_record({"kind": "nope"})

    def test_crash_leaves_readable_prefix(self, tmp_path, fresh_obs):
        path = tmp_path / "crash.jsonl"
        tracer = Tracer()
        tracer.start(path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                tracer.event("checkpoint")
                raise RuntimeError("boom")
        tracer.stop()
        kinds = [r["kind"] for r in read_trace(path)]
        assert kinds == ["meta", "event", "span"]


class TestDisabledOverhead:
    def test_disabled_span_is_shared_singleton(self, fresh_obs):
        tracer = get_tracer()
        assert tracer.enabled is False
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b", big="tag") is NULL_SPAN

    def test_disabled_path_has_no_steady_state_allocation(self, fresh_obs):
        tracer = get_tracer()
        # Warm up any lazy interpreter state first.
        for _ in range(100):
            with tracer.span("warm"):
                pass
            tracer.event("warm")
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(10_000):
            with tracer.span("hot"):
                pass
            tracer.event("hot")
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        growth = sum(
            s.size_diff for s in after.compare_to(before, "filename")
            if s.size_diff > 0
        )
        # tracemalloc's own bookkeeping costs a few KiB; a per-call
        # allocation would show up as hundreds of KiB over 10k calls.
        assert growth < 64 * 1024

    def test_disabled_event_writes_nothing(self, fresh_obs):
        tracer = get_tracer()
        tracer.event("dropped", tag=1)
        assert tracer.records_written == 0


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.counter("c").add(3)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1)
        registry.histogram("h").observe(3)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 5.0}
        assert snap["g"]["value"] == 7.0
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == 2.0
        assert list(snap) == sorted(snap)

    def test_type_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(obs_metrics.MetricsError):
            registry.gauge("x")

    def test_concurrent_updates_lose_nothing(self):
        registry = MetricsRegistry()
        workers = SweepPolicy(max_workers=4).max_workers
        per_thread = 5_000

        def hammer():
            counter = registry.counter("edges")
            hist = registry.histogram("iters")
            for _ in range(per_thread):
                counter.add(1)
                hist.observe(1.0)

        threads = [threading.Thread(target=hammer)
                   for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        assert snap["edges"]["value"] == workers * per_thread
        assert snap["iters"]["count"] == workers * per_thread

    def test_merge_folds_worker_snapshot(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").add(1)
        worker.counter("c").add(2)
        worker.gauge("g").set(9)
        worker.histogram("h").observe(4)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["c"]["value"] == 3.0
        assert snap["g"]["value"] == 9.0
        assert snap["h"]["count"] == 1

    def test_machine_run_populates_canonical_metrics(self, fresh_obs,
                                                     small_workload):
        registry = get_metrics()
        AcceleratorMachine().run(PageRank(), small_workload)
        snap = registry.snapshot()
        assert snap[obs_metrics.EDGES_STREAMED]["value"] > 0
        assert obs_metrics.BPG_BANK_WAKES in snap

    def test_sweep_retries_counted(self, fresh_obs, small_workload):
        calls = {"n": 0}

        class Flaky(PageRank):
            def transform_graph(self, graph):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient")
                return super().transform_graph(graph)

        points = sweep("num_pus", [4], Flaky, small_workload,
                       policy=SweepPolicy(retries=2, backoff=0.0))
        assert points[0].ok and points[0].attempts == 2
        assert points[0].metrics["retries"] == 1
        snap = get_metrics().snapshot()
        assert snap[obs_metrics.SWEEP_POINT_RETRIES]["value"] == 1.0


class TestAttributionTaxonomy:
    def test_component_phase_covers_all_components(self):
        assert set(COMPONENT_PHASE) == set(ALL_COMPONENTS)
        assert set(COMPONENT_PHASE.values()) <= set(PHASES)

    def test_stream_tracer_emits_to_adopted_stream(self, fresh_obs):
        sink = io.StringIO()
        tracer = Tracer()
        tracer.start(sink)
        with tracer.span("s"):
            pass
        tracer.stop()
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert [r["kind"] for r in lines] == ["meta", "span"]


class TestHotPathObservability:
    """The PR-7 hot-path instruments: counters for the vectorized
    executor, shared-memory attaches and the GraphR fold path, plus the
    ``shm.attach`` / ``fig21.fold`` spans."""

    def test_vectorized_executor_counts_edges(self, fresh_obs):
        from repro.algorithms import PageRank
        from repro.algorithms.vertex_centric import run_vertex_centric

        g = rmat(128, 512, seed=7, name="obs-vec")
        vc = run_vertex_centric(PageRank(iterations=3), g)
        snap = get_metrics().snapshot()
        assert snap[obs_metrics.EXECUTOR_VECTORIZED_EDGES]["value"] \
            == vc.edges_examined

    def test_shm_attach_counter_and_span(self, tmp_path, fresh_obs):
        from repro.perf import shm

        if not shm.shared_memory_available():
            pytest.skip("no shared memory on this platform")
        g = rmat(64, 256, seed=9, name="obs-shm")
        path = tmp_path / "shm.jsonl"
        tracer = get_tracer()
        tracer.start(path)
        try:
            ref = shm.share_graph(g)
            shm.attach_graph(ref)
            shm.attach_graph(ref)  # memo hit: no second attach
        finally:
            tracer.stop()
            shm.release_all()
        records = read_trace(path)
        spans = [r for r in records if r.get("name") == "shm.attach"]
        assert len(spans) == 1
        assert spans[0]["tags"]["edges"] == g.num_edges
        snap = get_metrics().snapshot()
        assert snap[obs_metrics.SHM_GRAPHS_ATTACHED]["value"] == 1.0

    def test_graphr_fold_counter_and_fig21_span(self, tmp_path, fresh_obs,
                                                monkeypatch):
        from repro.algorithms import PageRank
        from repro.experiments import fig21

        wl = Workload(rmat(128, 512, seed=15, name="obs-fig21"))
        monkeypatch.setattr(
            fig21, "workloads", lambda: {"XS": wl}
        )
        monkeypatch.setattr(
            fig21, "ALL_ALGORITHM_FACTORIES", {"PR": PageRank}
        )
        path = tmp_path / "fig21.jsonl"
        tracer = get_tracer()
        tracer.start(path)
        try:
            result = fig21.run()
        finally:
            tracer.stop()
        assert len(result.rows) == 1
        records = read_trace(path)
        spans = [r for r in records if r.get("name") == "fig21.fold"]
        assert len(spans) == 1
        assert spans[0]["tags"]["cells"] == 1
        snap = get_metrics().snapshot()
        assert snap[obs_metrics.GRAPHR_FOLD_CONFIGS]["value"] >= 1.0
