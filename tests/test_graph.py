"""Tests for the core Graph container."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import EDGE_BITS, Graph, WEIGHTED_EDGE_BITS


class TestConstruction:
    def test_from_edges(self, tiny_graph):
        assert tiny_graph.num_vertices == 8
        assert tiny_graph.num_edges == 11

    def test_empty(self):
        g = Graph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_empty_zero_vertices(self):
        g = Graph.empty()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_arrays_are_int64(self, tiny_graph):
        assert tiny_graph.src.dtype == np.int64
        assert tiny_graph.dst.dtype == np.int64

    def test_weighted(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[1.5, 2.5])
        assert g.is_weighted
        assert g.weights.tolist() == [1.5, 2.5]

    def test_unweighted_has_no_weights(self, tiny_graph):
        assert not tiny_graph.is_weighted
        assert tiny_graph.weights is None

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 3)])

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(-1, 0)])

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(GraphError):
            Graph(-1, np.empty(0), np.empty(0))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphError):
            Graph(3, np.array([0, 1]), np.array([1]))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1)], weights=[1.0, 2.0])

    def test_rejects_malformed_pairs(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(0, 1, 2)])

    def test_edge_bits(self, tiny_graph):
        assert tiny_graph.edge_bits == EDGE_BITS == 64

    def test_weighted_edge_bits(self):
        g = Graph.from_edges(2, [(0, 1)], weights=[1.0])
        assert g.edge_bits == WEIGHTED_EDGE_BITS == 96

    def test_allows_self_loops(self):
        g = Graph.from_edges(2, [(0, 0), (1, 1)])
        assert g.num_edges == 2

    def test_allows_duplicate_edges(self):
        g = Graph.from_edges(2, [(0, 1), (0, 1)])
        assert g.num_edges == 2


class TestDegrees:
    def test_out_degrees(self, tiny_graph):
        degrees = tiny_graph.out_degrees()
        assert degrees.tolist() == [1, 1, 2, 2, 2, 0, 2, 1]

    def test_in_degrees(self, tiny_graph):
        degrees = tiny_graph.in_degrees()
        assert degrees.sum() == tiny_graph.num_edges

    def test_degree_sums_match_edge_count(self, small_rmat):
        assert small_rmat.out_degrees().sum() == small_rmat.num_edges
        assert small_rmat.in_degrees().sum() == small_rmat.num_edges

    def test_empty_graph_degrees(self):
        g = Graph.empty(4)
        assert g.out_degrees().tolist() == [0, 0, 0, 0]


class TestQueries:
    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(0, 1)

    def test_edges_iterator(self, tiny_graph):
        edges = list(tiny_graph.edges())
        assert len(edges) == 11
        assert (1, 0) in edges


class TestTransforms:
    def test_reverse(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.has_edge(0, 1)
        assert rev.num_edges == tiny_graph.num_edges
        np.testing.assert_array_equal(rev.src, tiny_graph.dst)

    def test_double_reverse_is_identity(self, tiny_graph):
        rev2 = tiny_graph.reverse().reverse()
        np.testing.assert_array_equal(rev2.src, tiny_graph.src)
        np.testing.assert_array_equal(rev2.dst, tiny_graph.dst)

    def test_reverse_preserves_weights(self, weighted_graph):
        rev = weighted_graph.reverse()
        np.testing.assert_array_equal(rev.weights, weighted_graph.weights)

    def test_with_unit_weights(self, tiny_graph):
        g = tiny_graph.with_unit_weights()
        assert g.is_weighted
        assert (g.weights == 1.0).all()

    def test_relabel_identity(self, tiny_graph):
        ident = np.arange(8)
        g = tiny_graph.relabel(ident)
        np.testing.assert_array_equal(g.src, tiny_graph.src)

    def test_relabel_permutes(self, tiny_graph):
        mapping = np.array([7, 6, 5, 4, 3, 2, 1, 0])
        g = tiny_graph.relabel(mapping)
        assert g.has_edge(6, 7)  # was (1, 0)
        assert g.num_edges == tiny_graph.num_edges

    def test_relabel_rejects_non_permutation(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.relabel(np.zeros(8, dtype=np.int64))

    def test_relabel_rejects_wrong_length(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.relabel(np.arange(5))

    def test_sorted_by(self, tiny_graph):
        order = np.arange(tiny_graph.num_edges)[::-1]
        g = tiny_graph.sorted_by(order)
        assert g.src[0] == tiny_graph.src[-1]

    def test_sorted_by_rejects_partial_order(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.sorted_by(np.arange(3))

    def test_deduplicated(self):
        g = Graph.from_edges(3, [(0, 1), (0, 1), (1, 2)])
        d = g.deduplicated()
        assert d.num_edges == 2

    def test_deduplicated_keeps_all_unique(self, tiny_graph):
        assert tiny_graph.deduplicated().num_edges == tiny_graph.num_edges

    def test_without_self_loops(self):
        g = Graph.from_edges(3, [(0, 0), (0, 1), (2, 2)])
        clean = g.without_self_loops()
        assert clean.num_edges == 1
        assert clean.has_edge(0, 1)


class TestInterop:
    def test_to_networkx(self, tiny_graph):
        nxg = tiny_graph.to_networkx()
        assert nxg.number_of_nodes() == 8
        assert nxg.has_edge(1, 0)

    def test_to_networkx_weighted(self, weighted_graph):
        nxg = weighted_graph.to_networkx()
        assert nxg.number_of_nodes() == weighted_graph.num_vertices

    def test_to_csr(self, tiny_graph):
        m = tiny_graph.to_csr()
        assert m.shape == (8, 8)
        assert m.sum() == tiny_graph.num_edges

    def test_to_csr_weighted(self):
        g = Graph.from_edges(2, [(0, 1)], weights=[3.5])
        assert g.to_csr()[0, 1] == 3.5
