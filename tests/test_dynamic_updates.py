"""Tests for request generation, replay and throughput measurement."""

import numpy as np
import pytest

from repro.dynamic import (
    DEFAULT_MIX,
    DynamicGraphStore,
    GraphRDynamicStore,
    Request,
    RequestKind,
    apply_requests,
    apply_requests_batched,
    compare_dynamic_throughput,
    generate_requests,
    measure_store,
    modeled_update_ratio,
)
from repro.errors import DynamicGraphError
from repro.graph import rmat


class TestGenerate:
    def test_mix_respected(self, medium_rmat):
        requests = generate_requests(medium_rmat, 8000, seed=0)
        kinds = [r.kind for r in requests]
        add_share = kinds.count(RequestKind.ADD_EDGE) / len(kinds)
        del_share = kinds.count(RequestKind.DELETE_EDGE) / len(kinds)
        assert add_share == pytest.approx(0.45, abs=0.03)
        assert del_share == pytest.approx(0.45, abs=0.03)

    def test_deterministic(self, small_rmat):
        a = generate_requests(small_rmat, 500, seed=7)
        b = generate_requests(small_rmat, 500, seed=7)
        assert a == b

    def test_replay_never_raises(self, small_rmat):
        requests = generate_requests(small_rmat, 2000, seed=3)
        store = DynamicGraphStore(small_rmat, num_intervals=8)
        apply_requests(store, requests)  # must not raise

    def test_replay_on_graphr_store(self, small_rmat):
        requests = generate_requests(small_rmat, 1000, seed=3)
        store = GraphRDynamicStore(small_rmat)
        apply_requests(store, requests)

    def test_both_stores_agree_on_edge_count(self, small_rmat):
        requests = generate_requests(small_rmat, 1500, seed=5)
        hyve = DynamicGraphStore(small_rmat, num_intervals=8)
        graphr = GraphRDynamicStore(small_rmat)
        apply_requests(hyve, requests)
        apply_requests(graphr, requests)
        assert hyve.num_edges == graphr.num_edges

    def test_custom_mix(self, small_rmat):
        requests = generate_requests(
            small_rmat, 1000, mix={"add_edge": 1.0}, seed=1
        )
        assert all(r.kind is RequestKind.ADD_EDGE for r in requests)

    def test_rejects_zero_weight_mix(self, small_rmat):
        with pytest.raises(DynamicGraphError):
            generate_requests(small_rmat, 10, mix={"add_edge": 0.0})

    def test_default_mix_sums_to_one(self):
        assert sum(DEFAULT_MIX.values()) == pytest.approx(1.0)


class TestApply:
    def test_returns_changed_edges(self, small_rmat):
        store = DynamicGraphStore(small_rmat, num_intervals=8)
        requests = [
            Request(RequestKind.ADD_EDGE, 0, 1),
            Request(RequestKind.ADD_EDGE, 1, 2),
            Request(RequestKind.DELETE_EDGE, 0, 1),
            Request(RequestKind.ADD_VERTEX),
        ]
        changed = apply_requests(store, requests)
        assert changed == 3  # vertex add changes no edges


class TestBatched:
    def test_verify_flag_checks_batched_against_serial(self, small_rmat):
        # Seeded randomized equivalence: many chunk sizes over the same
        # generated stream, each run self-verified against a serial
        # shadow replay (verify=True raises on any state divergence).
        rng = np.random.default_rng(2026)
        for trial in range(4):
            requests = generate_requests(
                small_rmat, 1200, seed=int(rng.integers(1 << 30))
            )
            chunk = int(rng.integers(1, 400))
            store = DynamicGraphStore(small_rmat, num_intervals=8)
            changed = apply_requests_batched(
                store, requests, chunk_size=chunk, verify=True
            )
            assert changed > 0, f"trial {trial} chunk={chunk}"

    def test_delete_then_reinsert_same_packed_key(self, small_rmat):
        # The regression shape from the stream-rebuild corpus repro: an
        # edge deleted and re-added (same (src, dst) packed key) inside
        # one chunk must survive the add->delete chunk reordering, which
        # collapses it to net "still present exactly once".
        requests = [
            Request(RequestKind.ADD_EDGE, 3, 4),
            Request(RequestKind.DELETE_EDGE, 3, 4),
            Request(RequestKind.ADD_EDGE, 3, 4),
            Request(RequestKind.DELETE_EDGE, 3, 4),
            Request(RequestKind.ADD_EDGE, 3, 4),
        ]
        store = DynamicGraphStore(small_rmat, num_intervals=8)
        apply_requests_batched(store, requests, chunk_size=len(requests),
                               verify=True)
        serial = DynamicGraphStore(small_rmat, num_intervals=8)
        apply_requests(serial, requests)
        assert store.num_edges == serial.num_edges

    def test_rejects_nonpositive_chunk(self, small_rmat):
        store = DynamicGraphStore(small_rmat, num_intervals=8)
        with pytest.raises(DynamicGraphError):
            apply_requests_batched(store, [], chunk_size=0)


class TestThroughput:
    def test_measure_store(self, small_rmat):
        store = DynamicGraphStore(small_rmat, num_intervals=8)
        requests = generate_requests(small_rmat, 1000, seed=2)
        result = measure_store("HyVE", store, "s", requests)
        assert result.edges_changed > 0
        assert result.million_edges_per_second > 0

    def test_compare_returns_both(self, small_rmat):
        hyve, graphr = compare_dynamic_throughput(
            small_rmat, num_requests=1500
        )
        assert hyve.store == "HyVE"
        assert graphr.store == "GraphR"
        assert hyve.edges_changed == graphr.edges_changed

    def test_hyve_faster_than_graphr(self):
        # Wall-clock comparison: take the best of three runs per store
        # to shrug off scheduler noise.
        g = rmat(4096, 40000, seed=21)
        best_ratio = 0.0
        for attempt in range(3):
            hyve, graphr = compare_dynamic_throughput(
                g, num_requests=8000, seed=attempt
            )
            best_ratio = max(
                best_ratio,
                hyve.million_edges_per_second
                / graphr.million_edges_per_second,
            )
            if best_ratio > 1.0:
                break
        assert best_ratio > 1.0

    def test_modeled_ratio_near_paper(self):
        # Paper measures 8.04x; the data-movement model gives 8.5x.
        assert modeled_update_ratio() == pytest.approx(8.04, rel=0.2)
