"""Tests for the NVSim-lite calibrated device solver."""

import pytest

from repro.errors import MemoryModelError
from repro.memory import (
    NvSimLite,
    OptimizationTarget,
    ReRAMCellParams,
    TABLE3_CALIBRATION,
    best_energy_point,
    solve_sram,
    table3,
)
from repro.units import MB, PJ, PS


class TestTable3Calibration:
    """Table 3 of the paper must reproduce exactly."""

    PAPER_ROWS = {
        ("energy", 64): (20.13, 1221, 0.26),
        ("energy", 128): (33.87, 1983, 0.13),
        ("energy", 256): (57.31, 1983, 0.11),
        ("energy", 512): (102.07, 1983, 0.10),
        ("latency", 64): (381.47, 653, 9.13),
        ("latency", 128): (378.57, 590, 5.01),
        ("latency", 256): (382.37, 590, 2.53),
        ("latency", 512): (660.23, 527, 2.45),
    }

    @pytest.mark.parametrize("target,bits", list(PAPER_ROWS))
    def test_energy_and_period_exact(self, target, bits):
        rows = {(r["target"], r["output_bits"]): r for r in table3()}
        row = rows[(target, bits)]
        energy, period, power = self.PAPER_ROWS[(target, bits)]
        assert row["energy_pj"] == pytest.approx(energy)
        assert row["period_ps"] == pytest.approx(period)
        assert row["mw_per_bit"] == pytest.approx(power, abs=0.005)

    def test_best_point_is_energy_512(self):
        point = best_energy_point()
        assert point.output_bits == 512
        assert point.target is OptimizationTarget.ENERGY
        assert point.calibrated
        # 0.10 mW/bit: the minimum of the table.
        assert point.mw_per_bit() == pytest.approx(0.10, abs=0.005)

    def test_calibration_table_has_eight_points(self):
        assert len(TABLE3_CALIBRATION) == 8


class TestAnalyticFallback:
    def test_off_table_width_uses_analytic_model(self):
        point = NvSimLite().solve(1024)
        assert not point.calibrated
        assert point.read_energy > 102.07 * PJ  # wider than 512

    def test_analytic_close_to_calibration(self):
        # The fitted component model should land within 10% of the
        # published points it was fitted against.
        for (target, bits), (energy, _) in TABLE3_CALIBRATION.items():
            solver = NvSimLite()
            analytic, _ = solver._analytic_read(bits, target)
            assert analytic == pytest.approx(energy, rel=0.12)

    def test_rejects_zero_width(self):
        with pytest.raises(MemoryModelError):
            NvSimLite().solve(0)


class TestMLC:
    def test_mlc_points_not_calibrated(self):
        point = NvSimLite(ReRAMCellParams(cell_bits=2)).solve(512)
        assert not point.calibrated

    def test_more_cell_bits_more_read_energy(self):
        energies = [
            NvSimLite(ReRAMCellParams(cell_bits=b)).solve(512).read_energy
            for b in (1, 2, 3)
        ]
        assert energies[0] < energies[1] < energies[2]

    def test_more_cell_bits_slower(self):
        periods = [
            NvSimLite(ReRAMCellParams(cell_bits=b)).solve(512).read_period
            for b in (1, 2, 3)
        ]
        assert periods[0] < periods[1] < periods[2]

    def test_sense_levels(self):
        assert ReRAMCellParams(cell_bits=1).sense_levels == 1
        assert ReRAMCellParams(cell_bits=2).sense_levels == 3
        assert ReRAMCellParams(cell_bits=3).sense_levels == 7

    def test_rejects_zero_bits(self):
        with pytest.raises(MemoryModelError):
            ReRAMCellParams(cell_bits=0)

    def test_rejects_inverted_resistances(self):
        with pytest.raises(MemoryModelError):
            ReRAMCellParams(on_resistance=1e7, off_resistance=1e5)

    def test_resistance_ratio(self):
        assert ReRAMCellParams().resistance_ratio == pytest.approx(100.0)


class TestWrites:
    def test_write_scales_with_verify_rounds(self):
        one = NvSimLite(write_verify_rounds=1).solve(512)
        three = NvSimLite(write_verify_rounds=3).solve(512)
        assert three.write_energy > one.write_energy
        assert three.write_latency == pytest.approx(3 * one.write_latency)

    def test_write_latency_is_pulse_times_rounds(self):
        point = NvSimLite(write_verify_rounds=2).solve(512)
        assert point.write_latency == pytest.approx(20e-9)

    def test_rejects_zero_rounds(self):
        with pytest.raises(MemoryModelError):
            NvSimLite(write_verify_rounds=0)

    def test_write_energy_exceeds_read_energy(self):
        point = best_energy_point()
        assert point.write_energy > point.read_energy


class TestSRAM:
    def test_anchor_point(self):
        point = solve_sram(2 * MB)
        assert point.read_energy == pytest.approx(23.84 * PJ)
        assert point.read_latency == pytest.approx(960.03 * PS)
        assert point.write_energy == pytest.approx(24.74 * PJ)
        assert point.write_latency == pytest.approx(557.089 * PS)

    def test_four_mb_latency_matches_paper_cycle_ratio(self):
        # Paper: 1.071 ns at 2 MB -> 1.808 ns at 4 MB.
        two = solve_sram(2 * MB)
        four = solve_sram(4 * MB)
        assert four.read_latency / two.read_latency == pytest.approx(
            1.808 / 1.071, rel=1e-6
        )

    def test_energy_grows_sublinearly(self):
        two = solve_sram(2 * MB)
        eight = solve_sram(8 * MB)
        assert two.read_energy < eight.read_energy < 4 * two.read_energy

    def test_leakage_linear_in_capacity(self):
        two = solve_sram(2 * MB)
        four = solve_sram(4 * MB)
        assert four.leakage_power == pytest.approx(2 * two.leakage_power)

    def test_rejects_zero_capacity(self):
        with pytest.raises(MemoryModelError):
            solve_sram(0)

    def test_capacity_mb_property(self):
        assert solve_sram(16 * MB).capacity_mb == pytest.approx(16.0)
