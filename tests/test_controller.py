"""Tests for the hybrid memory controller and the memory map."""

import pytest

from repro.errors import ConfigError
from repro.graph import Graph, IntervalBlockPartition
from repro.memory import (
    BLOCK_HEADER_WORDS,
    Extent,
    HybridMemoryController,
    INTERVAL_HEADER_WORDS,
    MemoryMap,
)


@pytest.fixture
def partition(tiny_graph):
    return IntervalBlockPartition.build(tiny_graph, 4)


@pytest.fixture
def memory_map(partition):
    return MemoryMap.build(partition)


class TestExtent:
    def test_free(self):
        assert Extent(0, 10, 4).free == 6

    def test_rejects_overfull(self):
        with pytest.raises(ConfigError):
            Extent(0, 4, 5)

    def test_rejects_negative_offset(self):
        with pytest.raises(ConfigError):
            Extent(-1, 4, 2)


class TestMemoryMap:
    def test_block_extent_sizes(self, partition, memory_map):
        for i in range(4):
            for j in range(4):
                extent = memory_map.block_extent(i, j)
                edges = partition.block_edge_count(i, j)
                assert extent.used == BLOCK_HEADER_WORDS + 2 * edges
                assert extent.free >= 0

    def test_blocks_do_not_overlap(self, memory_map):
        extents = sorted(memory_map.block_extents, key=lambda e: e.offset)
        for a, b in zip(extents, extents[1:]):
            assert a.offset + a.capacity <= b.offset

    def test_interval_extents(self, partition, memory_map):
        for i in range(4):
            extent = memory_map.interval_extent(i)
            assert extent.used == (
                INTERVAL_HEADER_WORDS + partition.interval_size(i)
            )

    def test_total_words(self, memory_map):
        assert memory_map.edge_words == sum(
            e.capacity for e in memory_map.block_extents
        )
        assert memory_map.vertex_words == sum(
            e.capacity for e in memory_map.interval_extents
        )

    def test_slack_ratio_positive(self, memory_map):
        assert 0.0 < memory_map.slack_ratio() < 1.0

    def test_zero_slack(self, partition):
        m = MemoryMap.build(partition, block_slack=0.0, interval_slack=0.0)
        # Empty blocks still get a minimal landing pad.
        assert m.slack_ratio() >= 0.0

    def test_rejects_negative_slack(self, partition):
        with pytest.raises(ConfigError):
            MemoryMap.build(partition, block_slack=-0.1)

    def test_bits_properties(self, memory_map):
        assert memory_map.edge_bits == memory_map.edge_words * 32
        assert memory_map.vertex_bits == memory_map.vertex_words * 32

    def test_out_of_range(self, memory_map):
        with pytest.raises(ConfigError):
            memory_map.block_extent(4, 0)
        with pytest.raises(ConfigError):
            memory_map.interval_extent(-1)


class TestController:
    def test_initially_nothing_resident(self, memory_map):
        controller = HybridMemoryController(memory_map)
        assert controller.needs_scheduling((0, 0))

    def test_loading_marks_resident(self, memory_map):
        controller = HybridMemoryController(memory_map)
        controller.load_source_intervals([0, 1])
        controller.load_destination_intervals([2])
        assert not controller.needs_scheduling((0, 2))
        assert not controller.needs_scheduling((1, 2))
        assert controller.needs_scheduling((2, 2))
        assert controller.needs_scheduling((0, 0))

    def test_load_returns_only_new_fetches(self, memory_map):
        controller = HybridMemoryController(memory_map)
        assert controller.load_source_intervals([0, 1]) == [0, 1]
        assert controller.load_source_intervals([1, 2]) == [2]

    def test_replacement_evicts(self, memory_map):
        controller = HybridMemoryController(memory_map)
        controller.load_source_intervals([0])
        controller.load_source_intervals([3])
        assert 0 not in controller.resident_source_intervals

    def test_address_translation(self, memory_map):
        controller = HybridMemoryController(memory_map)
        assert controller.edge_stream_extent(1, 2) is memory_map.block_extent(1, 2)
        assert controller.vertex_extent(3) is memory_map.interval_extent(3)

    def test_load_validates_interval_ids(self, memory_map):
        controller = HybridMemoryController(memory_map)
        with pytest.raises(ConfigError):
            controller.load_source_intervals([99])
