"""Section 6.6's four design rules must hold under the calibrated models."""

import pytest

from repro.model import (
    design_rules,
    rule_crossbar_parallelism,
    rule_edge_storage,
    rule_partition_count,
    rule_vertex_storage,
)


def test_rule_1_edge_storage():
    assert rule_edge_storage()


def test_rule_2_vertex_storage():
    assert rule_vertex_storage()


def test_rule_3_crossbar_parallelism():
    assert rule_crossbar_parallelism()


def test_rule_4_partition_count():
    assert rule_partition_count()


def test_all_rules_bundle():
    rules = design_rules()
    assert set(rules) == {
        "edge_storage",
        "vertex_storage",
        "crossbar_parallelism",
        "partition_count",
    }
    assert all(rules.values()), rules
