"""Tests for the one-shot initialisation cost model (Section 3.1)."""

import pytest

from repro.algorithms import BFS, PageRank
from repro.arch import init_vs_execution, initialization_cost
from repro.arch.config import HyVEConfig, MemoryTechnology, Workload
from repro.memory.powergate import PowerGatingPolicy


class TestInitializationCost:
    def test_components_positive(self, lj_workload):
        cost = initialization_cost(PageRank(), lj_workload)
        assert cost.partition_time > 0
        assert cost.write_time > 0
        assert cost.write_energy > 0
        assert cost.total_time == pytest.approx(
            cost.partition_time + cost.write_time
        )

    def test_image_sizes_include_slack(self, lj_workload):
        cost = initialization_cost(PageRank(), lj_workload)
        raw_edge_bits = 69_000_000 * 64
        assert cost.edge_write_bits == pytest.approx(raw_edge_bits * 1.3)

    def test_bare_graph_accepted(self, small_rmat):
        cost = initialization_cost(BFS(0), small_rmat)
        assert cost.write_time > 0

    def test_dram_edges_write_faster(self, lj_workload):
        reram = initialization_cost(PageRank(), lj_workload)
        dram = initialization_cost(
            PageRank(),
            lj_workload,
            HyVEConfig(
                label="sd",
                edge_memory=MemoryTechnology.DRAM,
                power_gating=PowerGatingPolicy(enabled=False),
            ),
        )
        assert dram.write_time < reram.write_time


class TestSection31Claim:
    def test_write_not_an_obvious_delay(self, lj_workload):
        # The one-shot ReRAM write stays below 15% of a single PR run.
        ratios = init_vs_execution(PageRank(), lj_workload)
        assert ratios["write_over_execution"] < 0.15

    def test_write_energy_small_share(self, lj_workload):
        ratios = init_vs_execution(PageRank(), lj_workload)
        assert ratios["write_energy_over_execution"] < 0.10

    def test_ablation_driver(self):
        from repro.experiments.ablations import run_init_cost

        result = run_init_cost()
        assert len(result.rows) == 5
        assert all(row[3] < 0.2 for row in result.rows)
