"""Tests for the Section 6.2-6.5 analytic comparisons."""

import pytest

from repro.algorithms import PageRank
from repro.errors import ConfigError
from repro.model.edge_storage import (
    compare_edge_storage,
    read_pattern_conclusions,
)
from repro.model.preprocessing import (
    expected_nonempty_blocks,
    graphr_preprocessing_time,
    hyve_preprocessing_time,
    measure_partitioning,
    preprocessing_ratio,
    preprocessing_speed_sweep,
    preprocessing_time,
)
from repro.model.processing_units import (
    cmos_energy_per_edge,
    compare_processing_units,
    crossbar_mv_energy_per_edge,
)
from repro.model.vertex_storage import (
    architecture_traffic,
    compare_global_vertex_memory,
    compare_vertex_storage,
)


class TestEdgeStorage:
    def test_nine_bar_groups(self):
        assert len(compare_edge_storage()) == 9

    def test_section62_conclusions(self):
        conclusions = read_pattern_conclusions()
        assert all(conclusions.values()), conclusions

    def test_read_energy_ratio_several_fold(self):
        reads = [
            r for r in compare_edge_storage() if "Read (100%)" in r.workload
        ]
        for row in reads:
            assert 3.0 < row.energy_ratio < 15.0

    def test_mixed_workload_between_extremes(self):
        rows = compare_edge_storage()
        by_wl = {}
        for r in rows:
            if r.density_gbit == 4:
                by_wl[r.workload] = r
        read = by_wl["Sequential Read (100%)"]
        write = by_wl["Sequential Write (100%)"]
        mixed = [v for k, v in by_wl.items() if "50%" in k][0]
        assert write.edp_ratio < mixed.edp_ratio < read.edp_ratio


class TestVertexStorage:
    def test_graphr_prefers_reram(self, yt_workload):
        rows = compare_global_vertex_memory(
            PageRank(), {"YT": yt_workload}
        )
        graphr_rows = [r for r in rows if r.architecture == "GraphR"]
        assert all(r.edp_ratio > 1.0 for r in graphr_rows)

    def test_hyve_prefers_dram(self, yt_workload):
        rows = compare_global_vertex_memory(
            PageRank(), {"YT": yt_workload}
        )
        hyve_rows = [r for r in rows if r.architecture == "HyVE"]
        assert all(r.edp_ratio < 1.0 for r in hyve_rows)

    def test_graphr_reads_many_times_hyve(self, yt_workload):
        rows = compare_vertex_storage(PageRank(), {"YT": yt_workload})
        assert rows[0].read_ratio > 2.0

    def test_hyve_wins_on_dram_energy_and_edp(self, lj_workload):
        rows = compare_vertex_storage(PageRank(), {"LJ": lj_workload})
        assert rows[0].dram_energy_ratio > 1.0
        assert rows[0].dram_edp_ratio > 1.0

    def test_traffic_architecture_validation(self, yt_workload):
        with pytest.raises(ValueError):
            architecture_traffic(PageRank(), yt_workload, "TPU")


class TestProcessingUnits:
    def test_cmos_wins_both_metrics(self):
        for navg in (1.2, 1.5, 2.4):
            cmp = compare_processing_units(navg)
            assert cmp.cmos_wins_energy
            assert cmp.cmos_wins_latency

    def test_crossbar_energy_decreases_with_navg(self):
        assert crossbar_mv_energy_per_edge(2.4) < crossbar_mv_energy_per_edge(
            1.2
        )

    def test_cmos_energy_constants(self):
        assert cmos_energy_per_edge(True) == pytest.approx(3.7e-12)
        assert cmos_energy_per_edge(False) < cmos_energy_per_edge(True)

    def test_rejects_bad_navg(self):
        with pytest.raises(ConfigError):
            compare_processing_units(0.0)


class TestPreprocessing:
    def test_occupancy_expectation_bounds(self):
        assert expected_nonempty_blocks(0, 100) == 0.0
        assert expected_nonempty_blocks(1e9, 100) == pytest.approx(100.0)
        assert 0 < expected_nonempty_blocks(50, 100) < 50.0

    def test_more_blocks_slower(self):
        fast = preprocessing_time(1e6, 4)
        slow = preprocessing_time(1e6, 65536)
        assert slow > fast

    def test_fig12_shape(self):
        rows = preprocessing_speed_sweep(3e6, "YT")
        speeds = {r.num_intervals: r.normalized_speed for r in rows}
        assert speeds[2] == pytest.approx(1.0)
        assert speeds[32] > 0.8        # flat through 32x32
        assert speeds[256] < 0.4       # dramatic drop past 64x64
        assert speeds[64] > speeds[128] > speeds[256]

    def test_graphr_much_slower(self):
        ratio = preprocessing_ratio(4.85e6, 69e6, 1.5, 40)
        assert 3.0 < ratio < 12.0  # paper: 6.73x on average

    def test_graphr_time_uses_navg(self):
        fast = graphr_preprocessing_time(1e6, 1e7, navg=2.4)
        slow = graphr_preprocessing_time(1e6, 1e7, navg=1.2)
        assert slow > fast

    def test_hyve_time_positive(self):
        assert hyve_preprocessing_time(1e6, 32) > 0

    def test_measure_partitioning_runs(self, small_rmat):
        assert measure_partitioning(small_rmat, 8, repeats=1) > 0

    def test_measure_rejects_zero_repeats(self, small_rmat):
        with pytest.raises(ConfigError):
            measure_partitioning(small_rmat, 8, repeats=0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            preprocessing_time(10, 0)
        with pytest.raises(ConfigError):
            graphr_preprocessing_time(10, 10, navg=0)
