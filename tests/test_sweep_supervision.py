"""Tests for supervised parallel sweeps: pool respawn and degradation.

A worker process dying breaks the whole ``ProcessPoolExecutor``; the
supervisor must harvest completed results, respawn the pool,
re-dispatch only the lost points (charging them a lost attempt), and
after ``MAX_POOL_FAILURES`` broken pools finish the remainder serially
in the parent.  The chaos ``kill_worker_rate`` hook drives the same
path via fault injection.
"""

import os

import pytest

from repro.algorithms import PageRank
from repro.arch.sweep import SweepPolicy, points_to_csv, sweep
from repro.faults.chaos import ChaosProfile, chaos_context
from repro.graph import rmat
from repro.obs import metrics as obs_metrics

VALUES = [0.25, 0.5, 0.75, 1.0]


@pytest.fixture
def graph():
    return rmat(64, 256, seed=17, name="supervision-rmat")


class _KillOnceFactory:
    """Picklable algorithm factory that hard-kills the first worker
    process to claim the marker file, then behaves normally."""

    def __init__(self, marker: str, parent_pid: int) -> None:
        self.marker = marker
        self.parent_pid = parent_pid

    def __call__(self):
        if os.getpid() != self.parent_pid:
            try:
                fd = os.open(self.marker,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
            except FileExistsError:
                pass
            else:
                os._exit(137)
        return PageRank()


class _KillAlwaysFactory:
    """Picklable factory that kills *every* worker process: the pool
    can never finish, forcing the serial-fallback path."""

    def __init__(self, parent_pid: int) -> None:
        self.parent_pid = parent_pid

    def __call__(self):
        if os.getpid() != self.parent_pid:
            os._exit(137)
        return PageRank()


def _counter(name: str) -> float:
    return obs_metrics.get_metrics().counter(name).value


@pytest.mark.slow
class TestSupervision:
    def test_single_worker_death_respawns_and_completes(
        self, tmp_path, graph
    ):
        factory = _KillOnceFactory(str(tmp_path / "killed.marker"),
                                   os.getpid())
        respawns_before = _counter(obs_metrics.SWEEP_POOL_RESPAWNS)
        serial_before = _counter(obs_metrics.SWEEP_SERIAL_FALLBACKS)
        points = sweep("region_hit_rate", VALUES, factory, graph,
                       policy=SweepPolicy(max_workers=2))
        assert all(p.ok for p in points)
        assert _counter(obs_metrics.SWEEP_POOL_RESPAWNS) \
            == respawns_before + 1
        assert _counter(obs_metrics.SWEEP_SERIAL_FALLBACKS) \
            == serial_before
        # The lost dispatch is charged to the re-dispatched point(s).
        assert sum(p.attempts for p in points) > len(points)
        # Reports match an unsupervised serial sweep exactly.
        serial = sweep("region_hit_rate", VALUES, PageRank, graph)
        for supervised, reference in zip(points, serial):
            assert supervised.report.total_energy \
                == reference.report.total_energy
            assert supervised.report.time == reference.report.time

    def test_repeated_pool_death_degrades_to_serial(
        self, tmp_path, graph
    ):
        factory = _KillAlwaysFactory(os.getpid())
        serial_before = _counter(obs_metrics.SWEEP_SERIAL_FALLBACKS)
        points = sweep("region_hit_rate", VALUES, factory, graph,
                       policy=SweepPolicy(max_workers=2))
        assert all(p.ok for p in points)
        assert _counter(obs_metrics.SWEEP_SERIAL_FALLBACKS) \
            == serial_before + 1
        # Every point lost MAX_POOL_FAILURES dispatches before the
        # serial pass succeeded on attempt one.
        assert all(p.attempts == 3 for p in points)

    def test_chaos_killed_workers_absorbed(self, graph):
        """kill_worker_rate=1.0 kills every pool worker (the PID guard
        protects the parent): the sweep must still finish, via respawn
        then serial fallback, with correct results."""
        serial_before = _counter(obs_metrics.SWEEP_SERIAL_FALLBACKS)
        with chaos_context(ChaosProfile(seed=3, kill_worker_rate=1.0)):
            points = sweep("region_hit_rate", VALUES, PageRank, graph,
                           policy=SweepPolicy(max_workers=2))
        assert all(p.ok for p in points)
        assert _counter(obs_metrics.SWEEP_SERIAL_FALLBACKS) \
            == serial_before + 1
        reference = sweep("region_hit_rate", VALUES, PageRank, graph)
        for chaotic, ref in zip(points, reference):
            assert chaotic.report.total_energy \
                == ref.report.total_energy

    def test_healthy_parallel_sweep_unchanged(self, graph):
        """No worker deaths: the supervised path is byte-identical to
        the serial sweep (the PR 5 parallel-sweep oracle, inline)."""
        respawns_before = _counter(obs_metrics.SWEEP_POOL_RESPAWNS)
        parallel = sweep("region_hit_rate", VALUES, PageRank, graph,
                         policy=SweepPolicy(max_workers=2))
        serial = sweep("region_hit_rate", VALUES, PageRank, graph,
                       policy=SweepPolicy(max_workers=1))
        assert points_to_csv(parallel) == points_to_csv(serial)
        assert _counter(obs_metrics.SWEEP_POOL_RESPAWNS) \
            == respawns_before
