"""Tests for the ReRAM and DDR4 chip models."""

import pytest

from repro.errors import ConfigError
from repro.memory import (
    AccessKind,
    AccessPattern,
    DDR4Chip,
    DRAMConfig,
    RANDOM_READ_LATENCY,
    ReRAMChip,
    ReRAMConfig,
    ReRAMCellParams,
)
from repro.units import GBIT, NS, PJ

SEQ = AccessPattern.SEQUENTIAL
RND = AccessPattern.RANDOM
R, W = AccessKind.READ, AccessKind.WRITE


class TestReRAMChip:
    def test_sequential_read_uses_calibrated_energy(self):
        chip = ReRAMChip()
        cost = chip.access_cost(R, SEQ)
        assert cost.energy == pytest.approx(102.07 * PJ)

    def test_random_read_latency_matches_graphr_quote(self):
        chip = ReRAMChip()
        cost = chip.access_cost(R, RND)
        assert cost.latency == pytest.approx(29.31 * NS)

    def test_sequential_slower_than_array_period(self):
        chip = ReRAMChip()
        # Streaming cycle includes the sense-pipeline factor.
        assert chip.access_cost(R, SEQ).latency > chip.point.read_period

    def test_write_slower_and_costlier_than_read(self):
        chip = ReRAMChip()
        read = chip.access_cost(R, SEQ)
        write = chip.access_cost(W, SEQ)
        assert write.latency > read.latency
        assert write.energy > read.energy

    def test_density_scales_energy_mildly(self):
        small = ReRAMChip(ReRAMConfig(density_bits=4 * GBIT))
        large = ReRAMChip(ReRAMConfig(density_bits=16 * GBIT))
        ratio = (
            large.access_cost(R, SEQ).energy / small.access_cost(R, SEQ).energy
        )
        assert 1.0 < ratio < 1.5

    def test_standby_scales_with_banks(self):
        few = ReRAMChip(ReRAMConfig(num_banks=4))
        many = ReRAMChip(ReRAMConfig(num_banks=16))
        assert many.standby_power > few.standby_power

    def test_gated_power_is_small_fraction(self):
        chip = ReRAMChip()
        assert chip.gated_power < 0.05 * chip.standby_power

    def test_active_banks_subbank_vs_bank_interleaving(self):
        assert ReRAMChip(ReRAMConfig(subbank_interleaving=True)).active_banks == 1
        chip = ReRAMChip(ReRAMConfig(subbank_interleaving=False))
        assert chip.active_banks == chip.num_banks

    def test_mlc_chip_more_read_energy(self):
        slc = ReRAMChip()
        mlc = ReRAMChip(ReRAMConfig(cell=ReRAMCellParams(cell_bits=2)))
        assert mlc.access_cost(R, SEQ).energy > slc.access_cost(R, SEQ).energy

    def test_timings_roundtrip(self):
        chip = ReRAMChip()
        t = chip.timings()
        assert t.read_energy == chip.access_cost(R, SEQ).energy
        assert t.random_read_latency == RANDOM_READ_LATENCY
        assert t.standby_power == chip.standby_power

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            ReRAMConfig(density_bits=0)
        with pytest.raises(ConfigError):
            ReRAMConfig(num_banks=0)

    def test_bank_capacity(self):
        config = ReRAMConfig(density_bits=4 * GBIT, num_banks=8)
        assert config.bank_capacity_bits == 4 * GBIT // 8


class TestDDR4Chip:
    def test_burst_time_matches_speed_grade(self):
        chip = DDR4Chip()
        # 512 bits = 8 beats at 2 beats/clock of 0.937 ns.
        assert chip.access_cost(R, SEQ).latency == pytest.approx(
            4 * 0.937 * NS
        )

    def test_random_read_pays_row_activation(self):
        chip = DDR4Chip()
        seq = chip.access_cost(R, SEQ)
        rnd = chip.access_cost(R, RND)
        assert rnd.latency > 25 * NS
        assert rnd.energy > seq.energy

    def test_sequential_amortises_activation(self):
        chip = DDR4Chip()
        seq = chip.access_cost(R, SEQ)
        rnd = chip.access_cost(R, RND)
        # Row hits amortise the activate over row_bits/access_bits.
        assert seq.energy < rnd.energy / 2

    def test_refresh_power_grows_with_density(self):
        p4 = DDR4Chip(DRAMConfig(density_bits=4 * GBIT)).refresh_power
        p16 = DDR4Chip(DRAMConfig(density_bits=16 * GBIT)).refresh_power
        assert p16 > p4

    def test_cannot_be_gated(self):
        chip = DDR4Chip()
        assert chip.gated_power == chip.standby_power

    def test_write_read_energies_same_order(self):
        chip = DDR4Chip()
        r = chip.access_cost(R, SEQ).energy
        w = chip.access_cost(W, SEQ).energy
        assert 0.5 < w / r < 1.5

    def test_rejects_row_smaller_than_access(self):
        with pytest.raises(ConfigError):
            DRAMConfig(access_bits=512, row_bits=256)

    def test_timings_roundtrip(self):
        chip = DDR4Chip()
        t = chip.timings()
        assert t.standby_power == chip.standby_power
        assert t.access_bits == 512


class TestCrossTechnology:
    """The Section 6.2 takeaways at device level."""

    def test_reram_reads_much_cheaper(self):
        reram = ReRAMChip().access_cost(R, SEQ).energy
        dram = DDR4Chip().access_cost(R, SEQ).energy
        assert dram / reram > 4.0

    def test_dram_streams_faster(self):
        reram = ReRAMChip().access_cost(R, SEQ).latency
        dram = DDR4Chip().access_cost(R, SEQ).latency
        assert dram < reram

    def test_dram_writes_much_faster(self):
        reram = ReRAMChip().access_cost(W, SEQ).latency
        dram = DDR4Chip().access_cost(W, SEQ).latency
        assert reram / dram > 4.0

    def test_reram_standby_below_dram(self):
        assert ReRAMChip().standby_power < DDR4Chip().standby_power
