"""Docs gate: the link/anchor checker and doc doctests stay green."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestSlug:
    def test_github_slug_rules(self):
        assert check_docs.github_slug("Trace schema (`hyve-trace-v1`)") \
            == "trace-schema-hyve-trace-v1"
        assert check_docs.github_slug("Span and event taxonomy") \
            == "span-and-event-taxonomy"
        assert check_docs.github_slug("C++ & Python!") == "c--python"


class TestRepoDocs:
    def test_no_broken_links_or_anchors(self):
        files = sorted((REPO_ROOT / "docs").glob("*.md"))
        files.append(REPO_ROOT / "README.md")
        assert check_docs.check_links(files) == []

    def test_doc_doctests_pass(self):
        assert check_docs.run_doctests(check_docs.DOCTEST_FILES) == []

    def test_checker_flags_broken_link(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("[dead](missing.md) and [frag](#nowhere)\n")
        problems = check_docs.check_links([bad])
        assert len(problems) == 2
        assert any("missing.md" in p for p in problems)
        assert any("#nowhere" in p for p in problems)


class TestObservabilityPage:
    def test_documents_every_metric_constant(self):
        from repro.obs import metrics as m

        page = (REPO_ROOT / "docs" / "observability.md").read_text()
        constants = [
            m.EDGES_STREAMED, m.EXECUTOR_EDGES, m.BPG_BANK_WAKES,
            m.ROUTER_ROTATIONS, m.CACHE_HITS, m.CACHE_MISSES,
            m.SWEEP_POINT_RETRIES, m.INTERVAL_FETCHES,
            m.CONVERGENCE_ITERATIONS,
        ]
        for name in constants:
            assert f"`{name}`" in page, f"{name} undocumented"

    def test_documents_schema_version(self):
        from repro.obs import TRACE_SCHEMA

        page = (REPO_ROOT / "docs" / "observability.md").read_text()
        assert TRACE_SCHEMA in page
