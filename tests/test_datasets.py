"""Tests for the synthetic dataset registry (Table 2 stand-ins)."""

import pytest

from repro.graph import DATASET_ORDER, DATASETS, load, load_all
from repro.graph.datasets import clear_cache
from repro.graph.stats import average_edges_per_nonempty_block


class TestRegistry:
    def test_five_datasets_in_paper_order(self):
        assert DATASET_ORDER == ("YT", "WK", "AS", "LJ", "TW")
        assert set(DATASETS) == set(DATASET_ORDER)

    def test_paper_sizes(self):
        assert DATASETS["TW"].paper_edges == 1_470_000_000
        assert DATASETS["YT"].paper_vertices == 1_160_000

    def test_scale_factors_positive(self):
        for spec in DATASETS.values():
            assert spec.scale_factor > 1.0

    def test_vertex_edge_ratio_preserved(self):
        for spec in DATASETS.values():
            paper_ratio = spec.paper_edges / spec.paper_vertices
            synth_ratio = spec.num_edges / spec.num_vertices
            assert synth_ratio == pytest.approx(paper_ratio, rel=0.25)


class TestLoading:
    def test_load_matches_spec(self):
        g = load("YT")
        spec = DATASETS["YT"]
        assert g.num_vertices == spec.num_vertices
        assert g.num_edges == spec.num_edges

    def test_load_caches(self):
        assert load("YT") is load("YT")

    def test_load_case_insensitive(self):
        assert load("yt") is load("YT")

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_load_all(self):
        graphs = load_all()
        assert list(graphs) == list(DATASET_ORDER)

    def test_clear_cache_regenerates_identically(self):
        import numpy as np

        a = load("WK")
        clear_cache()
        b = load("WK")
        assert a is not b
        np.testing.assert_array_equal(a.src, b.src)


class TestTable1Calibration:
    """The synthetic graphs must reproduce the paper's N_avg (Table 1)."""

    PAPER = {"YT": 1.44, "WK": 1.23, "AS": 2.38, "LJ": 1.49, "TW": 1.73}

    @pytest.mark.parametrize("key", DATASET_ORDER)
    def test_navg_within_five_percent(self, key):
        navg = average_edges_per_nonempty_block(load(key))
        assert navg == pytest.approx(self.PAPER[key], rel=0.05)

    def test_navg_ordering_matches_paper(self):
        measured = {
            k: average_edges_per_nonempty_block(load(k))
            for k in DATASET_ORDER
        }
        paper_order = sorted(self.PAPER, key=self.PAPER.get)
        measured_order = sorted(measured, key=measured.get)
        assert paper_order == measured_order
