"""Validate the analytic schedule model against a concrete Algorithm-2
walk that counts every access (repro.arch.validation)."""

import numpy as np
import pytest

from repro.algorithms import BFS, ConnectedComponents, PageRank, run_cached
from repro.arch.config import HyVEConfig, Workload
from repro.arch.scheduler import ScheduleCounts
from repro.arch.validation import measure_schedule
from repro.graph import hash_partition, rmat
from repro.memory.powergate import PowerGatingPolicy


@pytest.fixture(scope="module")
def graph():
    # Hash-placed so active vertices spread uniformly, matching the
    # analytic activity approximation's assumption.
    g = rmat(1024, 8192, seed=51, name="validation")
    _, placement = hash_partition(g, 16)
    return placement.apply(g)


def analytic(algorithm, graph, p, n, sharing=True):
    config = HyVEConfig(
        label="validate",
        num_pus=n,
        num_intervals=p,
        data_sharing=sharing,
        power_gating=PowerGatingPolicy(enabled=False),
    )
    run = run_cached(algorithm, graph)
    return ScheduleCounts.compute(run, Workload(graph), config), run


class TestExactCounts:
    """Counts with no approximation must match to the operation."""

    @pytest.mark.parametrize("factory", [PageRank, BFS, ConnectedComponents])
    def test_edge_stream_and_pu_ops(self, factory, graph):
        measured = measure_schedule(factory(), graph, 16, 4)
        counts, _ = analytic(factory(), graph, 16, 4)
        assert measured.edge_reads == counts.edges_total
        assert measured.pu_ops == counts.pu_ops

    @pytest.mark.parametrize("factory", [PageRank, BFS])
    def test_onchip_traffic(self, factory, graph):
        measured = measure_schedule(factory(), graph, 16, 4)
        counts, _ = analytic(factory(), graph, 16, 4)
        assert measured.onchip_reads * 32 == counts.onchip_read_bits
        assert measured.onchip_writes * 32 == counts.onchip_write_bits

    def test_step_count(self, graph):
        measured = measure_schedule(PageRank(), graph, 16, 4)
        counts, _ = analytic(PageRank(), graph, 16, 4)
        assert measured.steps == counts.steps_total

    def test_results_match_vectorized(self, graph):
        from repro.algorithms import run_vectorized

        measured = measure_schedule(PageRank(), graph, 16, 4)
        reference = run_vectorized(PageRank(), graph)
        np.testing.assert_allclose(measured.values, reference.values)


class TestIntervalTraffic:
    """Equation (8) and the sharing factor, against ground truth."""

    def test_pagerank_source_loads_exact(self, graph):
        # PR keeps every vertex active: Equation (8) must hold exactly:
        # (P/N) * N_v vertices per iteration.
        measured = measure_schedule(PageRank(), graph, 16, 4)
        expected = (16 / 4) * graph.num_vertices * measured.iterations
        assert measured.src_vertices_loaded == expected

    def test_pagerank_analytic_matches_measurement(self, graph):
        measured = measure_schedule(PageRank(), graph, 16, 4)
        counts, run = analytic(PageRank(), graph, 16, 4)
        loads_bits = (
            (measured.src_vertices_loaded + measured.dst_vertices_loaded)
            * run.vertex_bits
        )
        assert counts.offchip_load_bits == pytest.approx(loads_bits)
        stores_bits = measured.dst_vertices_stored * run.vertex_bits
        assert counts.offchip_store_bits == pytest.approx(stores_bits)

    def test_sharing_factor_is_n(self, graph):
        shared = measure_schedule(PageRank(), graph, 16, 4,
                                  data_sharing=True)
        unshared = measure_schedule(PageRank(), graph, 16, 4,
                                    data_sharing=False)
        # Without sharing every block reloads its source interval: N x.
        assert unshared.src_vertices_loaded == 4 * shared.src_vertices_loaded

    def test_bfs_activity_model_close_to_ground_truth(self, graph):
        measured = measure_schedule(BFS(0), graph, 16, 4)
        counts, run = analytic(BFS(0), graph, 16, 4)
        measured_load_bits = (
            (measured.src_vertices_loaded + measured.dst_vertices_loaded)
            * run.vertex_bits
        )
        # The analytic activity factor is a spread approximation; it
        # must land within 35% of the concrete controller's loads.
        assert counts.offchip_load_bits == pytest.approx(
            measured_load_bits, rel=0.35
        )

    def test_bfs_loads_far_below_full_activity(self, graph):
        measured = measure_schedule(BFS(0), graph, 16, 4)
        full = (16 / 4) * graph.num_vertices * measured.iterations
        assert measured.src_vertices_loaded < full

    def test_dst_stores_bounded_by_loads(self, graph):
        for factory in (PageRank, BFS):
            measured = measure_schedule(factory(), graph, 16, 4)
            assert measured.dst_vertices_stored == measured.dst_vertices_loaded
