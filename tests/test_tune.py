"""Design-space autotuner: spaces, Pareto extraction, engines, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank
from repro.arch.config import NAMED_CONFIGS, HyVEConfig, Workload
from repro.arch.cpu import CPUMachine
from repro.arch.graphr import GraphRMachine
from repro.arch.machine import AcceleratorMachine
from repro.arch.sweep import sweep_axis
from repro.cli import main
from repro.errors import ConfigError
from repro.perf.batch import run_grid
from repro.perf.cache import CacheStats
from repro.tune import (
    BACKENDS,
    SearchSpace,
    default_space,
    exhaustive_search,
    frontiers_to_csv,
    guided_search,
    pareto_mask,
    recommend,
    search,
)
from repro.units import GBIT

#: A small mixed-axis space (one pricing axis, one structural axis)
#: used by several engine tests: 3 x 2 = 6 configs over 2 counts keys.
SMALL_AXES = {
    "region_hit_rate": (0.6, 0.85, 1.0),
    "num_pus": (4, 8),
}


# --- Pareto extraction edge cases --------------------------------------------


class TestParetoMask:
    def test_empty_input(self):
        mask = pareto_mask(np.empty((0, 3)))
        assert mask.shape == (0,) and mask.dtype == bool

    def test_single_point_survives(self):
        assert pareto_mask(np.array([[5.0, 5.0, 5.0]])).tolist() == [True]

    def test_duplicates_all_survive_together(self):
        # Two identical optimal points: neither strictly dominates the
        # other, so both stay; the copy of a dominated point falls too.
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0], [2.0, 2.0]])
        assert pareto_mask(pts).tolist() == [True, True, False, False]

    def test_all_dominated_chain_keeps_only_head(self):
        chain = np.array([[float(i), float(i)] for i in range(10)])
        assert pareto_mask(chain).tolist() == [True] + [False] * 9

    def test_classic_tradeoff_curve(self):
        pts = np.array([[1.0, 4.0], [2.0, 2.0], [4.0, 1.0], [3.0, 3.0]])
        assert pareto_mask(pts).tolist() == [True, True, True, False]

    def test_order_independence(self):
        rng = np.random.default_rng(2026)
        pts = rng.random((300, 3))
        base = pareto_mask(pts)
        perm = rng.permutation(len(pts))
        assert (pareto_mask(pts[perm]) == base[perm]).all()

    def test_blocked_path_matches_naive(self):
        # More points than the dominance block size, checked against a
        # direct O(n^2) Python scan.
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 6, size=(400, 2)).astype(float)
        mask = pareto_mask(pts)
        for i, a in enumerate(pts):
            dominated = any(
                (b <= a).all() and (b < a).any() for b in pts
            )
            assert mask[i] == (not dominated)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pareto_mask(np.array([1.0, 2.0]))


# --- SearchSpace -------------------------------------------------------------


class TestSearchSpace:
    def test_size_is_cross_product(self):
        space = SearchSpace.from_axes(SMALL_AXES)
        assert space.size == 6
        candidates, skipped = space.candidates()
        assert len(candidates) == 6 and skipped == 0
        assert [c.index for c in candidates] == list(range(6))

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown axis"):
            SearchSpace.from_axes({"warp_speed": (1,)})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown tuner backend"):
            SearchSpace.from_axes({}, backend="tpu")

    def test_unknown_machine_value_rejected(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            SearchSpace.from_axes({"machine": ("acc+Nope",)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="at least one value"):
            SearchSpace.from_axes({"num_pus": ()})

    def test_invalid_corners_skipped_and_counted(self):
        # acc+DRAM has no scratchpad, so data_sharing=True is an
        # invalid machine: it must be skipped, not raised.
        space = SearchSpace.from_axes(
            {"machine": ("acc+DRAM",), "data_sharing": (True, False)}
        )
        candidates, skipped = space.candidates()
        assert skipped == 1
        assert [c.config.data_sharing for c in candidates] == [False]

    def test_labels_encode_assignment(self):
        space = SearchSpace.from_axes(
            {"density_gbit": (4,), "bpg_timeout_us": (0.5,)}
        )
        (cand,), _ = space.candidates()
        assert cand.label == "density_gbit=4|bpg_timeout_us=0.5"
        assert cand.config.label == cand.label

    def test_derived_axes_reach_nested_dataclasses(self):
        space = SearchSpace.from_axes(
            {"density_gbit": (16,), "mlc_bits": (2,),
             "bpg_timeout_us": (5.0,)}
        )
        (cand,), _ = space.candidates()
        cfg = cand.config
        assert cfg.reram.density_bits == 16 * GBIT
        assert cfg.dram.density_bits == 16 * GBIT
        assert cfg.reram.cell.cell_bits == 2
        assert cfg.power_gating.idle_timeout == pytest.approx(5e-6)

    def test_machine_axis_swaps_base(self):
        space = SearchSpace.from_axes({"machine": tuple(NAMED_CONFIGS)})
        candidates, skipped = space.candidates()
        assert skipped == 0
        onchip = {c.config.onchip_vertex for c in candidates}
        assert len(candidates) == len(NAMED_CONFIGS)
        assert "none" in onchip and "sram" in onchip

    def test_pricing_only_classification(self):
        assert SearchSpace.from_axes(
            {"region_hit_rate": (0.8,), "density_gbit": (4,)}
        ).pricing_only
        assert not SearchSpace.from_axes(SMALL_AXES).pricing_only
        assert SearchSpace.from_axes(
            {}, backend="graphr"
        ).pricing_only

    def test_default_spaces_enumerate(self):
        for backend in BACKENDS:
            space = default_space(backend)
            candidates, _ = space.candidates()
            assert candidates, backend
        structural = default_space("hyve", structural=True)
        assert structural.size > default_space("hyve").size


# --- exhaustive engine vs brute force ---------------------------------------


class TestExhaustiveEngine:
    def test_frontier_matches_brute_force(self, small_rmat):
        workload = Workload(small_rmat)
        spaces = [
            SearchSpace.from_axes(SMALL_AXES),
            SearchSpace.from_axes({}, backend="graphr"),
            SearchSpace.from_axes({}, backend="cpu"),
        ]
        frontier = exhaustive_search(PageRank(), workload, spaces)

        reports = []
        for space in spaces:
            candidates, _ = space.candidates()
            for cand in candidates:
                machine = {
                    "hyve": AcceleratorMachine,
                    "graphr": GraphRMachine,
                    "cpu": CPUMachine,
                }[cand.backend](cand.config)
                reports.append(machine.run(PageRank(), workload).report)
        assert frontier.evaluated == len(reports)
        brute = {
            i for i, a in enumerate(reports)
            if not any(
                b.time <= a.time
                and b.total_energy <= a.total_energy
                and b.edp <= a.edp
                and (b.time < a.time
                     or b.total_energy < a.total_energy
                     or b.edp < a.edp)
                for b in reports
            )
        }
        assert {p.index for p in frontier.points} == brute
        for point in frontier.points:
            serial = reports[point.index]
            assert point.time == serial.time
            assert point.energy == serial.total_energy
            assert point.edp == serial.edp

    def test_points_sorted_by_time(self, small_rmat):
        frontier = exhaustive_search(
            PageRank(), small_rmat, SearchSpace.from_axes(SMALL_AXES)
        )
        times = [p.time for p in frontier.points]
        assert times == sorted(times)

    def test_unknown_engine_rejected(self, small_rmat):
        with pytest.raises(ConfigError, match="unknown tuner engine"):
            search(PageRank(), small_rmat,
                   SearchSpace.from_axes(SMALL_AXES), engine="random")


# --- guided engine -----------------------------------------------------------


class TestGuidedEngine:
    def test_full_budget_has_zero_regret(self, small_rmat):
        space = SearchSpace.from_axes(SMALL_AXES)
        exhaustive = exhaustive_search(BFS(), small_rmat, space)
        guided = guided_search(BFS(), small_rmat, space,
                               budget=space.size, seed=3)
        assert guided.evaluated == exhaustive.evaluated
        assert (
            [(p.index, p.label, p.time, p.energy, p.edp)
             for p in guided.points]
            == [(p.index, p.label, p.time, p.energy, p.edp)
                for p in exhaustive.points]
        )

    def test_budget_is_respected(self, small_rmat):
        space = SearchSpace.from_axes(
            {"region_hit_rate": (0.5, 0.7, 0.9, 1.0),
             "num_pus": (2, 4, 8)}
        )
        guided = guided_search(PageRank(), small_rmat, space,
                               budget=5, seed=0)
        assert 0 < guided.evaluated <= 5

    def test_same_seed_same_frontier(self, small_rmat):
        space = SearchSpace.from_axes(
            {"region_hit_rate": (0.5, 0.7, 0.9, 1.0),
             "num_pus": (2, 4, 8)}
        )
        a = guided_search(PageRank(), small_rmat, space, budget=6, seed=11)
        b = guided_search(PageRank(), small_rmat, space, budget=6, seed=11)
        assert a.to_csv() == b.to_csv()
        assert a.evaluated == b.evaluated

    def test_guided_frontier_points_are_truly_priced(self, small_rmat):
        # Every frontier point of a budgeted search must carry a real
        # report (non-dominated within the priced subset).
        space = SearchSpace.from_axes(
            {"region_hit_rate": (0.5, 0.75, 1.0), "num_pus": (2, 4)}
        )
        guided = guided_search(BFS(), small_rmat, space, budget=4, seed=5)
        assert guided.points
        for point in guided.points:
            assert point.report.total_energy == point.energy

    def test_budget_must_cover_deterministic_backends(self, small_rmat):
        spaces = [
            SearchSpace.from_axes(SMALL_AXES),
            SearchSpace.from_axes({}, backend="cpu"),
        ]
        with pytest.raises(ConfigError, match="budget"):
            search(PageRank(), small_rmat, spaces,
                   engine="guided", budget=1)

    def test_nonpositive_budget_rejected(self, small_rmat):
        with pytest.raises(ConfigError, match="budget"):
            search(PageRank(), small_rmat,
                   SearchSpace.from_axes(SMALL_AXES),
                   engine="guided", budget=0)


# --- frontier object ---------------------------------------------------------


class TestFrontier:
    @pytest.fixture()
    def frontier(self, small_rmat):
        return exhaustive_search(
            PageRank(), small_rmat, SearchSpace.from_axes(SMALL_AXES)
        )

    def test_best_respects_single_objective_weight(self, frontier):
        fastest = frontier.best({"time": 1.0})
        assert fastest.time == min(p.time for p in frontier.points)
        frugal = frontier.best({"energy": 1.0})
        assert frugal.energy == min(p.energy for p in frontier.points)

    def test_best_rejects_unknown_objective(self, frontier):
        with pytest.raises(ConfigError, match="unknown objective"):
            frontier.best({"beauty": 1.0})

    def test_csv_shape(self, frontier):
        lines = frontier.to_csv().splitlines()
        assert lines[0].startswith("graph,algorithm,engine,backend,label")
        assert len(lines) == 1 + len(frontier.points)

    def test_frontiers_to_csv_single_header(self, frontier):
        combined = frontiers_to_csv([frontier, frontier]).splitlines()
        assert combined.count(combined[0]) == 1
        assert len(combined) == 1 + 2 * len(frontier.points)

    def test_json_round_trip(self, frontier):
        payload = json.loads(frontier.to_json())
        assert payload["evaluated"] == frontier.evaluated
        assert len(payload["points"]) == len(frontier.points)
        assert payload["points"][0]["label"] == frontier.points[0].label

    def test_recommend_table(self, frontier):
        recs = recommend([frontier], weights={"edp": 1.0})
        assert len(recs) == 1
        assert recs[0].point.edp == min(p.edp for p in frontier.points)

    def test_empty_frontier_best_raises(self):
        from repro.tune.frontier import ParetoFrontier

        empty = ParetoFrontier(graph="g", algorithm="pr",
                               engine="exhaustive", evaluated=0,
                               skipped=0, points=())
        with pytest.raises(ConfigError, match="empty"):
            empty.best()


# --- sweep_axis and metrics ---------------------------------------------------


class TestSweepAxis:
    def test_matches_direct_run_grid(self, small_rmat):
        workload = Workload(small_rmat)
        values = (0.5, 0.8, 1.0)

        def make_config(v: float) -> HyVEConfig:
            return HyVEConfig(label=f"rhr={v}", region_hit_rate=v)

        via_helper = sweep_axis(values, make_config, PageRank, workload)
        direct = run_grid(PageRank(), workload,
                          [make_config(v) for v in values])
        assert len(via_helper) == len(direct) == 3
        for a, b in zip(via_helper, direct):
            assert a.report.to_dict() == b.report.to_dict()


class TestTuneMetrics:
    def test_search_updates_instruments(self, small_rmat):
        from repro.obs.metrics import (
            TUNE_CONFIGS_PRICED,
            TUNE_FRONTIER_SIZE,
            get_metrics,
        )

        before = get_metrics().counter(TUNE_CONFIGS_PRICED).value
        frontier = exhaustive_search(
            PageRank(), small_rmat, SearchSpace.from_axes(SMALL_AXES)
        )
        registry = get_metrics()
        assert (registry.counter(TUNE_CONFIGS_PRICED).value
                == before + frontier.evaluated)
        assert (registry.gauge(TUNE_FRONTIER_SIZE).value
                == len(frontier.points))


class TestCountsHitRate:
    def test_ratio_and_summary(self):
        stats = CacheStats(counts_memory_hits=3, counts_disk_hits=1,
                           counts_misses=4)
        assert stats.counts_hit_rate == 0.5
        assert "50.0% hit rate" in stats.counts_summary()

    def test_no_lookups(self):
        stats = CacheStats()
        assert stats.counts_hit_rate == 0.0
        assert "no lookups" in stats.counts_summary()


# --- CLI ---------------------------------------------------------------------


class TestOptimizeCLI:
    def test_optimize_writes_frontier_and_table(self, tmp_path, capsys):
        out = tmp_path / "frontier.csv"
        assert main([
            "optimize", "--dataset", "YT", "--algorithm", "pr",
            "--backend", "hyve", "--backend", "cpu",
            "--frontier-out", str(out),
        ]) == 0
        captured = capsys.readouterr()
        assert "recommended machine" in captured.out
        lines = out.read_text().splitlines()
        assert lines[0].startswith("graph,algorithm,engine")
        assert len(lines) > 1

    def test_optimize_json_output(self, capsys):
        assert main([
            "optimize", "--dataset", "YT", "--algorithm", "bfs",
            "--backend", "cpu", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload and payload[0]["algorithm"] == "BFS"

    def test_optimize_guided_with_weights(self, capsys):
        assert main([
            "optimize", "--dataset", "YT", "--algorithm", "pr",
            "--backend", "hyve", "--engine", "guided",
            "--budget", "40", "--weight", "edp=2", "--weight", "time=1",
        ]) == 0
        assert "recommended machine" in capsys.readouterr().out

    def test_bad_weight_is_operator_error(self, capsys):
        assert main([
            "optimize", "--dataset", "YT", "--backend", "cpu",
            "--weight", "beauty=1",
        ]) == 2
        assert "error:" in capsys.readouterr().err
