"""Out-of-core shard store: round trip, streaming, exact count merge.

The promises under test are the ones docs/scaling.md documents:

* write-once on-disk shards round-trip a graph bit-exactly (same
  content fingerprint, weighted or not) through zero-copy memmaps;
* a torn, truncated or tampered store is rejected loudly, never read;
* :func:`repro.graph.rmat_stream.rmat_stream` is chunk-size invariant;
* :func:`repro.graph.shards.run_sharded` reproduces ``run_vectorized``
  under the per-algorithm value policy with identical traces;
* :func:`repro.graph.shards.sharded_scheduled_counts` merges per-shard
  integer partials into :class:`ScheduleCounts` **bit-identical** to
  the whole-graph computation, on every named machine, serial or
  fanned out over worker processes;
* shard-backed graphs hand off across processes as tiny refs through
  the same ``share_workload``/``resolve_workload`` seam as shared
  memory.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms import (BFS, ConnectedComponents, PageRank, SSSP,
                              SpMV)
from repro.algorithms.runner import run_vectorized
from repro.arch.config import NAMED_CONFIGS, Workload
from repro.arch.scheduler import (clear_imbalance_cache,
                                  imbalance_reference_intervals)
from repro.errors import ShardError
from repro.graph import generators, rmat
from repro.graph.rmat_stream import rmat_stream
from repro.graph.shards import (ShardStore, ShardWriter, ShardedGraphRef,
                                attach_sharded_graph, merge_shard_counts,
                                run_sharded, shard_schedule_counts,
                                sharded_graph_ref, sharded_scheduled_counts,
                                sharded_workload, write_graph_shards,
                                write_rmat_shards)
from repro.perf import shm
from repro.perf.batch import scheduled_counts
from repro.perf.cache import temporary_run_cache

TEST_SEED = 2026

ALGORITHM_FACTORIES = (
    PageRank,
    lambda: BFS(root=1),
    ConnectedComponents,
    lambda: SSSP(source=1),
    SpMV,
)

#: Sum-based algorithms may differ by accumulation order only.
EXACT = {"BFS", "CC", "SSSP"}


@pytest.fixture
def graph():
    return rmat(300, 4200, seed=TEST_SEED, name="shard-rmat")


@pytest.fixture
def store(graph, tmp_path):
    return write_graph_shards(graph, tmp_path / "store", shard_edges=1000)


# --- round trip --------------------------------------------------------------

def test_round_trip_preserves_fingerprint(graph, store):
    assert store.num_shards == 5
    assert store.fingerprint == graph.fingerprint()
    mapped = store.as_graph()
    assert mapped.fingerprint() == graph.fingerprint()
    np.testing.assert_array_equal(mapped.src, graph.src)
    np.testing.assert_array_equal(mapped.dst, graph.dst)
    assert store.verify() == 5


def test_round_trip_weighted(tmp_path):
    graph = generators.random_weights(
        rmat(64, 700, seed=TEST_SEED + 1, name="shard-w"), seed=5
    )
    store = write_graph_shards(graph, tmp_path / "w", shard_edges=256)
    mapped = store.as_graph()
    assert mapped.fingerprint() == graph.fingerprint()
    np.testing.assert_array_equal(mapped.weights, graph.weights)
    # The seeded fingerprint is honest: recompute from the raw bytes.
    store.verify()


def test_manifest_fingerprint_matches_from_bytes_hash(graph, store):
    """The manifest digest must equal a from-scratch Graph.fingerprint,
    not merely be internally consistent."""
    from repro.graph.graph import Graph

    mapped = store.as_graph()
    rebuilt = Graph(mapped.num_vertices, np.array(mapped.src),
                    np.array(mapped.dst), name=mapped.name)
    assert rebuilt.fingerprint() == store.fingerprint


def test_empty_graph_round_trips(tmp_path):
    from repro.graph.graph import Graph

    empty = Graph(4, np.empty(0, dtype=np.int64),
                  np.empty(0, dtype=np.int64), name="empty")
    store = write_graph_shards(empty, tmp_path / "e", shard_edges=8)
    assert store.num_shards == 0
    assert store.as_graph().fingerprint() == empty.fingerprint()
    store.verify()


def test_memory_budget_model(store, graph):
    budget = store.memory_budget()
    assert budget["disk_bytes"] == graph.num_edges * 16
    assert budget["shard_bytes"] == store.max_shard_edges * 16
    assert budget["resident_bytes"] < budget["disk_bytes"]


# --- write-once discipline and rejection -------------------------------------

def test_write_once_refuses_committed_directory(graph, store, tmp_path):
    with pytest.raises(ShardError, match="write-once"):
        ShardWriter(store.directory, graph.num_vertices)
    with pytest.raises(ShardError, match="write-once"):
        write_graph_shards(graph, tmp_path / "store")


def test_writer_rejects_out_of_range_ids(tmp_path):
    writer = ShardWriter(tmp_path / "bad", num_vertices=4)
    with pytest.raises(ShardError, match=r"\[0, 4\)"):
        writer.append(np.array([0, 5]), np.array([1, 2]))
    with pytest.raises(ShardError, match=r"\[0, 4\)"):
        writer.append(np.array([0, -1]), np.array([1, 2]))


def test_writer_rejects_weight_mismatch(tmp_path):
    unweighted = ShardWriter(tmp_path / "u", num_vertices=4)
    with pytest.raises(ShardError, match="weights"):
        unweighted.append(np.array([0]), np.array([1]),
                          np.array([1.0]))
    weighted = ShardWriter(tmp_path / "w", num_vertices=4, weighted=True)
    with pytest.raises(ShardError, match="weights"):
        weighted.append(np.array([0]), np.array([1]))


def test_abandoned_writer_leaves_no_store(tmp_path, graph):
    with ShardWriter(tmp_path / "a", graph.num_vertices) as writer:
        writer.append(graph.src[:10], graph.dst[:10])
        # no finish(): simulated crash
    with pytest.raises(ShardError, match="manifest"):
        ShardStore.open(tmp_path / "a")
    # Re-running the writer over the uncommitted directory succeeds.
    store = write_graph_shards(graph, tmp_path / "a", shard_edges=1000)
    assert store.fingerprint == graph.fingerprint()


def test_torn_manifest_rejected(store):
    manifest = store.directory / "manifest.json"
    text = manifest.read_text()
    manifest.write_text(text[: len(text) // 2])
    with pytest.raises(ShardError, match="torn or truncated manifest"):
        ShardStore.open(store.directory)


def test_truncated_data_file_rejected(store):
    src = store.directory / "src.i64"
    src.write_bytes(src.read_bytes()[:-16])
    with pytest.raises(ShardError, match="truncated data file"):
        ShardStore.open(store.directory)


def test_wrong_schema_rejected(store):
    manifest = store.directory / "manifest.json"
    record = json.loads(manifest.read_text())
    record["schema"] = "hyve-shards-v0"
    manifest.write_text(json.dumps(record))
    with pytest.raises(ShardError, match="unsupported schema"):
        ShardStore.open(store.directory)


def test_tampered_data_fails_verify(store):
    dst = store.directory / "dst.i64"
    raw = bytearray(dst.read_bytes())
    raw[8] ^= 0xFF
    dst.write_bytes(bytes(raw))
    reopened = ShardStore.open(store.directory)  # sizes still agree
    with pytest.raises(ShardError, match="checksum mismatch"):
        reopened.verify()


def test_shard_index_out_of_range(store):
    with pytest.raises(ShardError, match="out of range"):
        store.shard_arrays(store.num_shards)


# --- streamed R-MAT ----------------------------------------------------------

def test_rmat_stream_chunk_size_invariant():
    def collect(chunk_edges):
        parts = list(rmat_stream(500, 3000, seed=7,
                                 chunk_edges=chunk_edges))
        return (np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]))

    src_a, dst_a = collect(64)
    src_b, dst_b = collect(3000)
    src_c, dst_c = collect(999)
    np.testing.assert_array_equal(src_a, src_b)
    np.testing.assert_array_equal(dst_a, dst_b)
    np.testing.assert_array_equal(src_a, src_c)
    np.testing.assert_array_equal(dst_a, dst_c)
    assert src_a.size == 3000
    assert src_a.min() >= 0 and src_a.max() < 500


def test_rmat_stream_chunk_shapes():
    sizes = [s.size for s, _ in rmat_stream(100, 1000, seed=1,
                                            chunk_edges=300)]
    assert sizes == [300, 300, 300, 100]


def test_write_rmat_shards_matches_stream(tmp_path):
    store = write_rmat_shards(tmp_path / "r", 500, 3000, seed=7,
                              shard_edges=1024, chunk_edges=100)
    src = np.concatenate(
        [s for _, s, _, _ in store.iter_shards()] or [np.empty(0)]
    )
    ref = np.concatenate(
        [p[0] for p in rmat_stream(500, 3000, seed=7, chunk_edges=512)]
    )
    np.testing.assert_array_equal(src, ref)
    store.verify()


# --- streamed execution ------------------------------------------------------

@pytest.mark.parametrize("factory", ALGORITHM_FACTORIES,
                         ids=lambda f: f().name)
def test_run_sharded_matches_vectorized(graph, store, factory):
    graph = (generators.random_weights(graph, seed=2)
             if factory().name == "SSSP" else graph)
    if factory().name == "SSSP":
        store = write_graph_shards(graph, store.directory.parent / "w",
                                   shard_edges=1000)
    reference = run_vectorized(factory(), graph)
    with temporary_run_cache():
        streamed = run_sharded(factory(), store)
    assert streamed.iterations == reference.iterations
    assert streamed.active_sources == reference.active_sources
    if reference.algorithm in EXACT:
        np.testing.assert_array_equal(streamed.values, reference.values)
    else:
        np.testing.assert_allclose(streamed.values, reference.values,
                                   rtol=1e-12, atol=0.0)


def test_run_sharded_seeds_run_cache(graph, store):
    from repro.algorithms.runner import run_cached

    with temporary_run_cache() as cache:
        streamed = run_sharded(PageRank(), store, cache=True)
        assert cache.stats.misses >= 0  # cache is live
        replayed = run_cached(PageRank(), store.as_graph())
    np.testing.assert_array_equal(streamed.values, replayed.values)
    assert replayed.iterations == streamed.iterations


# --- per-shard schedule counts -----------------------------------------------

def test_merged_counts_bit_identical_on_every_machine(graph, store):
    run = run_vectorized(PageRank(), graph)
    for name, factory in NAMED_CONFIGS.items():
        config = factory()
        with temporary_run_cache():
            clear_imbalance_cache()
            whole = scheduled_counts(run, Workload(graph=graph), config)
        with temporary_run_cache():
            clear_imbalance_cache()
            merged = sharded_scheduled_counts(
                run, sharded_workload(store), config
            )
        clear_imbalance_cache()
        assert merged == whole, f"counts diverged on {name}"


def test_merged_counts_bit_identical_natural_placement(graph, store):
    import dataclasses

    run = run_vectorized(PageRank(), graph)
    config = dataclasses.replace(NAMED_CONFIGS["acc+HyVE"](),
                                 hash_placement=False)
    with temporary_run_cache():
        clear_imbalance_cache()
        whole = scheduled_counts(run, Workload(graph=graph), config)
    with temporary_run_cache():
        clear_imbalance_cache()
        merged = sharded_scheduled_counts(
            run, sharded_workload(store), config
        )
    clear_imbalance_cache()
    assert merged == whole


def test_merged_counts_bit_identical_with_worker_pool(graph, store):
    run = run_vectorized(PageRank(), graph)
    config = NAMED_CONFIGS["acc+HyVE"]()
    with temporary_run_cache():
        clear_imbalance_cache()
        whole = scheduled_counts(run, Workload(graph=graph), config)
    with temporary_run_cache():
        clear_imbalance_cache()
        merged = sharded_scheduled_counts(
            run, sharded_workload(store), config, jobs=2
        )
    clear_imbalance_cache()
    assert merged == whole


def test_shard_partials_are_additive(graph, store):
    config = NAMED_CONFIGS["acc+HyVE"]()
    n = config.num_pus
    parts = [shard_schedule_counts(store, i, n, True)
             for i in range(store.num_shards)]
    total, merged = merge_shard_counts(parts)
    assert total == graph.num_edges
    p = imbalance_reference_intervals(graph.num_vertices, n)
    assert merged.shape == (p, p)
    assert merged.sum() == graph.num_edges
    # Shard order cannot matter: integer sums commute.
    total_r, merged_r = merge_shard_counts(list(reversed(parts)))
    assert total_r == total
    np.testing.assert_array_equal(merged_r, merged)


def test_sharded_counts_rejects_foreign_workload(graph, store):
    run = run_vectorized(PageRank(), graph)
    other = rmat(300, 4200, seed=TEST_SEED + 9, name="other")
    with pytest.raises(ShardError, match="does not match"):
        sharded_scheduled_counts(
            run, Workload(graph=other), NAMED_CONFIGS["acc+HyVE"](),
            store=store,
        )
    with pytest.raises(ShardError, match="not shard-backed"):
        sharded_scheduled_counts(
            run, Workload(graph=other), NAMED_CONFIGS["acc+HyVE"]()
        )


# --- cross-process handoff ---------------------------------------------------

def test_sharded_ref_round_trip(graph, store):
    ref = sharded_graph_ref(store)
    assert isinstance(ref, ShardedGraphRef)
    attached = attach_sharded_graph(ref)
    assert attached.fingerprint() == graph.fingerprint()
    # Memoised: same object on re-attach.
    assert attach_sharded_graph(ref) is attached


def test_share_workload_routes_shard_backed_graphs(graph, store):
    workload = sharded_workload(store, reported_edges=10 ** 9)
    payload = shm.share_workload(workload)
    assert isinstance(payload, shm.SharedWorkloadRef)
    assert isinstance(payload.graph_ref, ShardedGraphRef)
    resolved = shm.resolve_workload(payload)
    assert resolved.graph.fingerprint() == graph.fingerprint()
    assert resolved.reported_edges == 10 ** 9
    # No shared-memory segments were published for the shard store.
    assert graph.fingerprint() not in shm.owned_fingerprints()


def test_attach_rejects_stale_ref(store):
    import dataclasses

    # A ref whose fingerprint is not the one committed on disk (the
    # store was regenerated under the worker).  The fabricated digest
    # also misses the attach memo, so the check really runs.
    stale = dataclasses.replace(sharded_graph_ref(store),
                                fingerprint="0" * 32)
    with pytest.raises(ShardError, match="does not match"):
        attach_sharded_graph(stale)
