"""tools/trace_report.py: folding a trace to the attribution table."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "trace_report", REPO_ROOT / "tools" / "trace_report.py"
)
trace_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trace_report)


def _write_fixture_trace(path: Path) -> None:
    """A tiny hand-built hyve-trace-v1 file with known attribution."""
    records = [
        {"schema": "hyve-trace-v1", "kind": "meta",
         "wall_time_unix": 0.0, "pid": 1},
        {"kind": "span", "name": "machine.run", "id": 1, "parent": None,
         "t_start": 0.0, "t_end": 1.0, "dur": 1.0},
        {"kind": "event", "name": "phase_time", "id": 2, "parent": 1,
         "t": 0.5, "tags": {"phase": "stream", "seconds": 0.25}},
        {"kind": "event", "name": "phase_time", "id": 3, "parent": 1,
         "t": 0.5, "tags": {"phase": "schedule", "seconds": 0.75}},
        {"kind": "event", "name": "energy", "id": 4, "parent": 1,
         "t": 0.5, "tags": {"component": "edge_memory",
                            "phase": "stream", "joules": 2.0}},
        {"kind": "event", "name": "energy", "id": 5, "parent": 1,
         "t": 0.5, "tags": {"component": "logic_background",
                            "phase": "background", "joules": 6.0}},
        {"kind": "event", "name": "report", "id": 6, "parent": 1,
         "t": 0.9, "tags": {"machine": "m", "algorithm": "pr",
                            "graph": "g", "time_s": 1.0,
                            "total_energy_j": 8.0,
                            "mteps_per_watt": 1.0}},
    ]
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


GOLDEN_TABLE = """\
phase              time_s  time_%     energy_j energy_%
-------------------------------------------------------
preprocess              0    0.0%            0     0.0%
stream               0.25   25.0%            2    25.0%
process                 0    0.0%            0     0.0%
schedule             0.75   75.0%            0     0.0%
gating                  0    0.0%            0     0.0%
background              0    0.0%            6    75.0%
-------------------------------------------------------
total                   1  100.0%            8   100.0%

1 report(s); EnergyReport totals: 1 s / 8 J (fold delta 0.00% time, 0.00% energy)"""


class TestTraceReport:
    def test_golden_table(self, tmp_path, capsys):
        trace = tmp_path / "fixture.jsonl"
        _write_fixture_trace(trace)
        assert trace_report.main([str(trace)]) == 0
        out = capsys.readouterr().out.rstrip("\n")
        assert out == GOLDEN_TABLE

    def test_json_mode_totals(self, tmp_path, capsys):
        trace = tmp_path / "fixture.jsonl"
        _write_fixture_trace(trace)
        assert trace_report.main([str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_time_s"] == pytest.approx(1.0)
        assert payload["total_energy_j"] == pytest.approx(8.0)
        assert payload["reported_energy_j"] == pytest.approx(8.0)
        assert payload["time_s"]["schedule"] == pytest.approx(0.75)
        assert payload["reports"][0]["machine"] == "m"

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert trace_report.main([str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span"}\n')
        assert trace_report.main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_reports_exits_2(self, tmp_path, capsys):
        spans_only = tmp_path / "spans.jsonl"
        spans_only.write_text(
            json.dumps({"schema": "hyve-trace-v1", "kind": "meta",
                        "wall_time_unix": 0.0, "pid": 1}) + "\n"
            + json.dumps({"kind": "span", "name": "s", "id": 1,
                          "parent": None, "t_start": 0.0, "t_end": 1.0,
                          "dur": 1.0}) + "\n"
        )
        assert trace_report.main([str(spans_only)]) == 2
        assert "no report events" in capsys.readouterr().err
