"""Crash-consistency tests: SIGKILL mid-write and power-loss snapshots.

The durability promise of docs/robustness.md, enforced end to end:

* a writer process SIGKILLed at a random moment mid-traffic leaves a
  store that opens cleanly, passes a full integrity scan, and serves
  only old-or-new payloads — never a torn hybrid;
* a directory snapshot taken at any commit boundary (the power-loss
  model: everything fsynced so far survives, everything after is gone)
  is a fully valid store containing exactly the committed entries;
* a sweep checkpoint with a torn trailing line (the shape a killed
  appender leaves) loads with a warning and re-evaluates only the torn
  point, while interior corruption still fails loudly.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.arch.sweep import _load_checkpoint
from repro.perf.store import SQLiteStore

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Deterministic payload: the only valid contents for (key, version).
_PAYLOAD_HELPER = '''
def payload_for(key, version):
    value = 2166136261
    for ch in (key + ":" + str(version)).encode():
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    out = bytearray()
    state = value or 1
    for _ in range(512):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(state & 0xFF)
    return bytes(out)
'''

_KILL_WRITER = _PAYLOAD_HELPER + '''
import sys
from repro.perf.store import SQLiteStore

store = SQLiteStore(sys.argv[1])
print("READY", flush=True)
version = 0
while True:  # killed from outside, mid-put with high probability
    for k in range(8):
        store.put(f"key-{k}", payload_for(f"key-{k}", version),
                  kind="run", seed=version)
    version += 1
'''

_STEP_WRITER = _PAYLOAD_HELPER + '''
import sys
from repro.perf.store import SQLiteStore

store = SQLiteStore(sys.argv[1])
for line in sys.stdin:
    n = int(line)
    key = f"key-{n}"
    store.put(key, payload_for(key, 0), kind="run", seed=0)
    print(f"COMMITTED {n}", flush=True)
'''


def payload_for(key: str, version: int) -> bytes:
    value = 2166136261
    for ch in (key + ":" + str(version)).encode():
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    out = bytearray()
    state = value or 1
    for _ in range(512):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(state & 0xFF)
    return bytes(out)


def _spawn(code: str, *args: str, **popen_kwargs) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env=env, text=True, **popen_kwargs,
    )


def _assert_store_serves_only_valid_payloads(directory, max_version):
    store = SQLiteStore(directory)
    report = store.verify()
    assert report.clean, (
        f"SIGKILL left a checksum-invalid entry: {report.format()}"
    )
    for key in store.keys():
        payload = store.get(key)
        assert payload is not None
        valid = any(payload == payload_for(key, v)
                    for v in range(max_version))
        assert valid, f"{key}: payload is neither old nor new"
    store.close()


@pytest.mark.slow
def test_sigkill_mid_write_never_tears(tmp_path):
    """Kill a busy writer at random points; the store must always come
    back with only whole (old or new) entries."""
    directory = str(tmp_path / "store")
    for round_no in range(3):
        proc = _spawn(_KILL_WRITER, directory,
                      stdout=subprocess.PIPE)
        try:
            assert proc.stdout.readline().strip() == "READY"
            # Let it write for a random-ish slice, then pull the plug.
            time.sleep(0.05 + 0.08 * round_no)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        _assert_store_serves_only_valid_payloads(directory, 10_000)


@pytest.mark.slow
def test_power_loss_snapshot_at_commit_boundaries(tmp_path):
    """Copy the store directory after each commit (everything fsynced
    so far survives, nothing else): every snapshot must be a valid
    store holding exactly the committed prefix."""
    directory = tmp_path / "store"
    snapshots = []
    proc = _spawn(_STEP_WRITER, str(directory),
                  stdin=subprocess.PIPE, stdout=subprocess.PIPE)
    try:
        for n in range(4):
            proc.stdin.write(f"{n}\n")
            proc.stdin.flush()
            assert proc.stdout.readline().strip() == f"COMMITTED {n}"
            snap = tmp_path / f"snap-{n}"
            shutil.copytree(directory, snap)
            snapshots.append((n, snap))
    finally:
        proc.stdin.close()
        proc.wait(timeout=30)
    assert proc.returncode == 0
    for n, snap in snapshots:
        store = SQLiteStore(snap)
        report = store.verify()
        assert report.clean, f"snapshot {n}: {report.format()}"
        expected = {f"key-{i}" for i in range(n + 1)}
        assert set(store.keys()) == expected
        for key in expected:
            assert store.get(key) == payload_for(key, 0)
        store.close()


class TestCheckpointTornTail:
    def _write(self, path: Path, records, tail: str = "") -> None:
        with path.open("w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
            fh.write(tail)

    def _record(self, n: int) -> dict:
        return {"key": f"f={n}", "field": "f", "value_repr": repr(n),
                "report": None, "error": "x", "attempts": 1,
                "metrics": {"retries": 0}}

    def test_torn_trailing_line_tolerated_with_warning(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        full = json.dumps(self._record(2))
        self._write(path, [self._record(0), self._record(1)],
                    tail=full[: len(full) // 2])  # torn mid-append
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            entries = _load_checkpoint(path)
        assert set(entries) == {"f=0", "f=1"}
        assert len(caught) == 1
        assert "truncated trailing" in str(caught[0].message)

    def test_interior_corruption_still_raises(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(self._record(0)) + "\n")
            fh.write("{torn interior line\n")
            fh.write(json.dumps(self._record(1)) + "\n")
        with pytest.raises(ConfigError, match="corrupt sweep checkpoint"):
            _load_checkpoint(path)

    def test_complete_garbage_last_line_raises(self, tmp_path):
        """A newline-terminated final line that does not parse is
        corruption, not a torn append — the append completed."""
        path = tmp_path / "ckpt.jsonl"
        self._write(path, [self._record(0)], tail="not json\n")
        with pytest.raises(ConfigError, match="corrupt sweep checkpoint"):
            _load_checkpoint(path)

    def test_clean_checkpoint_loads_silently(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self._write(path, [self._record(0)])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            entries = _load_checkpoint(path)
        assert set(entries) == {"f=0"}

    def test_sweep_resumes_after_torn_tail(self, tmp_path):
        """End to end: a sweep checkpoint whose last append was torn
        resumes cleanly, re-evaluating only the torn point."""
        from repro.algorithms import PageRank
        from repro.arch.sweep import SweepPolicy, points_to_csv, sweep
        from repro.graph import rmat

        graph = rmat(64, 256, seed=3, name="ckpt-rmat")
        path = tmp_path / "sweep.jsonl"
        policy = SweepPolicy(checkpoint_path=path)
        values = [0.25, 0.75, 1.0]
        first = sweep("region_hit_rate", values, PageRank, graph,
                      policy=policy)
        reference = points_to_csv(first)
        # Tear the final record mid-line, as a killed appender would.
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        torn = "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 3]
        path.write_text(torn)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = sweep("region_hit_rate", values, PageRank, graph,
                           policy=policy)
        assert any("truncated trailing" in str(w.message)
                   for w in caught)
        assert points_to_csv(second) == reference
