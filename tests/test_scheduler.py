"""Tests for the schedule counting (Equations (3)-(8))."""

import pytest

from repro.algorithms import BFS, PageRank, run_cached
from repro.arch.config import HyVEConfig, MemoryTechnology, Workload
from repro.arch.scheduler import ScheduleCounts, estimate_imbalance
from repro.memory.powergate import PowerGatingPolicy


def counts_for(graph_or_workload, algorithm=None, **config_kwargs):
    workload = (
        graph_or_workload
        if isinstance(graph_or_workload, Workload)
        else Workload(graph_or_workload)
    )
    algorithm = algorithm or PageRank()
    config = HyVEConfig(label="t", **config_kwargs)
    run = run_cached(algorithm, workload.graph)
    return ScheduleCounts.compute(run, workload, config), run


class TestEdgeStream:
    def test_every_edge_read_once_per_iteration(self, medium_rmat):
        counts, run = counts_for(medium_rmat)
        assert counts.edges_total == run.iterations * medium_rmat.num_edges

    def test_stream_bits_use_edge_width(self, medium_rmat):
        counts, run = counts_for(medium_rmat)
        assert counts.edge_stream_bits == counts.edges_total * 64

    def test_scaled_to_reported_size(self, lj_workload):
        counts, run = counts_for(lj_workload)
        expected = run.iterations * 69_000_000
        assert counts.edges_total == pytest.approx(expected)


class TestOnchipTraffic:
    """Equations (3)-(4): per edge, two random reads and one write."""

    def test_random_traffic_tied_to_edges(self, medium_rmat):
        counts, _ = counts_for(medium_rmat)
        assert counts.onchip_read_bits == 2 * counts.edges_total * 32
        assert counts.onchip_write_bits == counts.edges_total * 32

    def test_pu_ops_equal_edges(self, medium_rmat):
        counts, _ = counts_for(medium_rmat)
        assert counts.pu_ops == counts.edges_total


class TestIntervalScheduling:
    """Equations (7)-(8) and the sharing factor."""

    def test_sharing_cuts_source_loads_by_n(self, lj_workload):
        shared, run = counts_for(lj_workload, data_sharing=True)
        unshared, _ = counts_for(lj_workload, data_sharing=False)
        p, n = shared.num_intervals, shared.num_pus
        # loads = (src_factor + 1 dst) * Nv * activity; the src factor
        # shrinks from P to P/N.
        ratio = unshared.offchip_load_bits / shared.offchip_load_bits
        expected = (p + 1) / (p / n + 1)
        assert ratio == pytest.approx(expected, rel=1e-6)

    def test_stores_unaffected_by_sharing(self, lj_workload):
        shared, _ = counts_for(lj_workload, data_sharing=True)
        unshared, _ = counts_for(lj_workload, data_sharing=False)
        assert shared.offchip_store_bits == unshared.offchip_store_bits

    def test_equation8_for_fully_active_algorithm(self, lj_workload):
        # PageRank keeps every vertex active: loads must equal
        # ((P/N) + 1) * Nv * iters exactly.
        counts, run = counts_for(lj_workload, data_sharing=True)
        p, n = counts.num_intervals, counts.num_pus
        expected = (
            (p / n + 1.0) * counts.vertices * run.vertex_bits
            * run.iterations
        )
        assert counts.offchip_load_bits == pytest.approx(expected)

    def test_bfs_activity_reduces_loads(self, lj_workload):
        bfs_counts, bfs_run = counts_for(lj_workload, algorithm=BFS())
        # If every iteration were fully active the loads would be:
        p, n = bfs_counts.num_intervals, bfs_counts.num_pus
        full = (
            (p / n + 1.0)
            * bfs_counts.vertices
            * bfs_run.vertex_bits
            * bfs_run.iterations
        )
        assert bfs_counts.offchip_load_bits < 0.9 * full


class TestNoScratchpad:
    def test_random_ops_replace_interval_traffic(self, medium_rmat):
        counts, _ = counts_for(
            medium_rmat,
            onchip_vertex=MemoryTechnology.NONE,
            data_sharing=False,
        )
        assert counts.offchip_load_bits == 0
        assert counts.onchip_read_bits == 0
        assert counts.random_read_ops == 2 * counts.edges_total
        assert counts.random_write_ops == counts.edges_total


class TestRouter:
    def test_sharing_routes_remote_source_reads(self, medium_rmat):
        counts, _ = counts_for(medium_rmat, data_sharing=True)
        n = counts.num_pus
        expected = counts.edges_total * (n - 1) / n * 2  # PR: 64-bit vertex
        assert counts.router_words == pytest.approx(expected)

    def test_no_sharing_no_router_traffic(self, medium_rmat):
        counts, _ = counts_for(medium_rmat, data_sharing=False)
        assert counts.router_words == 0
        assert counts.reroute_events == 0

    def test_steps_count(self, lj_workload):
        counts, run = counts_for(lj_workload)
        p, n = counts.num_intervals, counts.num_pus
        assert counts.steps_total == pytest.approx(
            (p / n) ** 2 * n * run.iterations
        )


class TestImbalance:
    def test_at_least_one(self, lj_workload):
        run = run_cached(PageRank(), lj_workload.graph)
        assert estimate_imbalance(run, lj_workload, 8) >= 1.0

    def test_cached(self, lj_workload):
        run = run_cached(PageRank(), lj_workload.graph)
        a = estimate_imbalance(run, lj_workload, 8)
        b = estimate_imbalance(run, lj_workload, 8)
        assert a == b

    def test_counts_carry_imbalance(self, lj_workload):
        counts, _ = counts_for(lj_workload)
        assert counts.imbalance >= 1.0


class TestPlacement:
    def test_hash_placement_balances(self, lj_workload):
        from repro.algorithms import PageRank, run_cached

        run = run_cached(PageRank(), lj_workload.graph)
        hashed = estimate_imbalance(run, lj_workload, 8,
                                    hash_placement=True)
        natural = estimate_imbalance(run, lj_workload, 8,
                                     hash_placement=False)
        assert 1.0 <= hashed < natural

    def test_config_flag_reaches_counts(self, lj_workload):
        natural, _ = counts_for(lj_workload, hash_placement=False)
        hashed, _ = counts_for(lj_workload, hash_placement=True)
        assert natural.imbalance > hashed.imbalance
