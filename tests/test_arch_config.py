"""Tests for workload and machine configuration."""

import pytest

from repro.arch.config import (
    HyVEConfig,
    MemoryTechnology,
    NAMED_CONFIGS,
    Workload,
    choose_num_intervals,
)
from repro.errors import ConfigError
from repro.graph import rmat
from repro.units import MB


class TestWorkload:
    def test_own_scale_defaults_to_one(self, small_rmat):
        wl = Workload(small_rmat)
        assert wl.vertex_scale == 1.0
        assert wl.edge_scale == 1.0

    def test_dataset_scale(self, lj_workload):
        assert lj_workload.vertex_scale == pytest.approx(
            4_850_000 / lj_workload.graph.num_vertices
        )
        assert lj_workload.edge_scale > 1.0

    def test_rejects_non_positive_reported_sizes(self, small_rmat):
        with pytest.raises(ConfigError):
            Workload(small_rmat, reported_vertices=0)
        with pytest.raises(ConfigError):
            Workload(small_rmat, reported_edges=-5)

    def test_name_follows_graph(self, small_rmat):
        assert Workload(small_rmat).name == small_rmat.name


class TestHyVEConfig:
    def test_defaults_are_the_optimised_design(self):
        config = HyVEConfig()
        assert config.num_pus == 8
        assert config.sram_bits == 2 * MB
        assert config.data_sharing
        assert config.power_gating.enabled
        assert config.edge_memory == MemoryTechnology.RERAM
        assert config.offchip_vertex == MemoryTechnology.DRAM

    def test_rejects_zero_pus(self):
        with pytest.raises(ConfigError):
            HyVEConfig(num_pus=0)

    def test_rejects_unknown_edge_memory(self):
        with pytest.raises(ConfigError):
            HyVEConfig(edge_memory="flash")

    def test_rejects_sharing_without_scratchpad(self):
        with pytest.raises(ConfigError):
            HyVEConfig(
                onchip_vertex=MemoryTechnology.NONE, data_sharing=True
            )

    def test_rejects_bad_hit_rate(self):
        with pytest.raises(ConfigError):
            HyVEConfig(region_hit_rate=1.5)

    def test_renamed(self):
        assert HyVEConfig().renamed("x").label == "x"


class TestChooseNumIntervals:
    def test_multiple_of_pu_count(self):
        config = HyVEConfig()
        p = choose_num_intervals(config, 4_850_000, 64)
        assert p % config.num_pus == 0

    def test_two_intervals_fit_per_scratchpad(self):
        config = HyVEConfig()
        n_v = 4_850_000
        p = choose_num_intervals(config, n_v, 64)
        per_interval_bits = (n_v / p) * 64
        assert 2 * per_interval_bits <= config.sram_bits * 1.01

    def test_small_graph_uses_minimum(self):
        config = HyVEConfig()
        assert choose_num_intervals(config, 100, 32) == config.num_pus

    def test_bigger_sram_fewer_intervals(self):
        small = HyVEConfig(sram_bits=2 * MB)
        large = HyVEConfig(sram_bits=16 * MB)
        assert choose_num_intervals(large, 10_000_000, 64) < (
            choose_num_intervals(small, 10_000_000, 64)
        )

    def test_wider_vertices_more_intervals(self):
        config = HyVEConfig()
        assert choose_num_intervals(config, 10_000_000, 64) > (
            choose_num_intervals(config, 10_000_000, 32)
        )

    def test_no_scratchpad_returns_pu_count(self):
        config = HyVEConfig(
            label="none",
            onchip_vertex=MemoryTechnology.NONE,
            data_sharing=False,
        )
        assert choose_num_intervals(config, 10_000_000, 64) == 8

    def test_rejects_non_positive_inputs(self):
        with pytest.raises(ConfigError):
            choose_num_intervals(HyVEConfig(), 0, 32)
        with pytest.raises(ConfigError):
            choose_num_intervals(HyVEConfig(), 100, 0)


class TestNamedConfigs:
    def test_all_five_accelerators(self):
        assert set(NAMED_CONFIGS) == {
            "acc+HyVE-opt",
            "acc+HyVE",
            "acc+SRAM+DRAM",
            "acc+DRAM",
            "acc+ReRAM",
        }

    def test_labels_match_keys(self):
        for name, factory in NAMED_CONFIGS.items():
            assert factory().label == name

    def test_sd_uses_dram_edges(self):
        assert NAMED_CONFIGS["acc+SRAM+DRAM"]().edge_memory == "dram"

    def test_opt_is_only_config_with_gating(self):
        gating = {
            name: factory().power_gating.enabled
            for name, factory in NAMED_CONFIGS.items()
        }
        assert gating.pop("acc+HyVE-opt") is True
        assert not any(gating.values())

    def test_raw_baselines_have_no_scratchpad(self):
        assert not NAMED_CONFIGS["acc+DRAM"]().has_onchip
        assert not NAMED_CONFIGS["acc+ReRAM"]().has_onchip
