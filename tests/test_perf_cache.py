"""Tests for the persistent content-addressed run cache.

Covers the two-level (memory LRU + SQLite disk store) cache, key
derivation from algorithm signatures, the scalar statistic store, the
legacy file-layout fallback, and the cross-process single-flight
protocol including dead-owner lock reclaim.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.algorithms import BFS, PageRank, SpMV
from repro.graph import rmat
from repro.perf.cache import RunCache, default_cache_dir


@pytest.fixture
def graph():
    return rmat(128, 512, seed=21, name="cache-rmat")


@pytest.fixture
def cache(tmp_path):
    return RunCache(directory=tmp_path / "store")


class TestDiskRoundTrip:
    def test_values_bit_identical_after_reload(self, cache, graph):
        first = cache.get_or_run(PageRank(), graph)
        # Drop the memory level so the second lookup must hit disk.
        cache.clear(disk=False)
        second = cache.get_or_run(PageRank(), graph)
        assert second is not first
        np.testing.assert_array_equal(second.values, first.values)
        assert second.values.dtype == first.values.dtype
        assert second.iterations == first.iterations
        assert second.active_sources == first.active_sources
        assert second.edge_bits == first.edge_bits

    def test_fresh_instance_hits_disk(self, tmp_path, graph):
        """A new RunCache over the same directory (a fresh process in
        disguise) serves the stored entry without re-converging."""
        writer = RunCache(directory=tmp_path / "store")
        stored = writer.get_or_run(BFS(0), graph)
        reader = RunCache(directory=tmp_path / "store")
        reloaded = reader.get_or_run(BFS(0), graph)
        np.testing.assert_array_equal(reloaded.values, stored.values)
        assert reader.stats.disk_hits == 1
        assert reader.stats.misses == 0

    def test_memory_only_cache_never_writes(self, graph):
        cache = RunCache(directory="")
        cache.get_or_run(PageRank(), graph)
        assert cache.directory is None
        assert cache.stats.stores == 0
        # Second lookup is a pure memory hit.
        cache.get_or_run(PageRank(), graph)
        assert cache.stats.memory_hits == 1


class TestStats:
    def test_counter_progression(self, cache, graph):
        cache.get_or_run(PageRank(), graph)
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        cache.get_or_run(PageRank(), graph)
        assert cache.stats.memory_hits == 1
        cache.clear(disk=False)
        cache.get_or_run(PageRank(), graph)
        assert cache.stats.disk_hits == 1
        assert cache.stats.hits == 2
        assert cache.stats.lookups == 3

    def test_summary_mentions_counts(self, cache, graph):
        cache.get_or_run(PageRank(), graph)
        text = cache.stats.summary()
        assert "miss" in text.lower()

    def test_info_reports_disk_entries(self, cache, graph):
        cache.get_or_run(PageRank(), graph)
        info = cache.info()
        assert info["disk_entries"] == 1
        assert info["disk_bytes"] > 0


class TestClear:
    def test_clear_counts_disk_entries(self, cache, graph):
        cache.get_or_run(PageRank(), graph)
        cache.get_or_run(BFS(0), graph)
        cache.get_or_scalar("stat", graph, lambda: 3.5)
        removed = cache.clear(disk=True)
        assert removed == 3
        assert cache.info()["disk_entries"] == 0
        # Everything recomputes after a full clear.
        cache.get_or_run(PageRank(), graph)
        assert cache.stats.misses == 4

    def test_clear_memory_only_keeps_disk(self, cache, graph):
        cache.get_or_run(PageRank(), graph)
        removed = cache.clear(disk=False)
        assert removed == 0
        assert cache.info()["disk_entries"] == 1


class TestKeying:
    def test_salt_separates_entries(self, tmp_path, graph):
        a = RunCache(directory=tmp_path / "store", salt="v1")
        b = RunCache(directory=tmp_path / "store", salt="v2")
        assert a.key(PageRank(), graph) != b.key(PageRank(), graph)
        a.get_or_run(PageRank(), graph)
        b.get_or_run(PageRank(), graph)
        assert b.stats.misses == 1  # v2 cannot see v1's entry

    def test_kind_separates_execution_models(self, cache, graph):
        assert (cache.key(PageRank(), graph, kind="edge")
                != cache.key(PageRank(), graph, kind="vertex"))

    def test_lru_bound_respected(self, tmp_path, graph):
        cache = RunCache(directory=tmp_path / "store", max_entries=2)
        cache.get_or_run(BFS(0), graph)
        cache.get_or_run(BFS(1), graph)
        cache.get_or_run(BFS(2), graph)
        assert len(cache._memory) == 2
        # The evicted root-0 run comes back from disk, not reconverged.
        cache.get_or_run(BFS(0), graph)
        assert cache.stats.disk_hits == 1
        assert cache.stats.misses == 3


class TestSignatureRegression:
    """The signature derives from instance state, so differently
    parameterised algorithms cannot silently collide (the old
    hardcoded-attribute-list bug)."""

    def test_spmv_input_vectors_not_conflated(self, cache, graph):
        x1 = np.linspace(0.0, 1.0, graph.num_vertices)
        x2 = np.linspace(1.0, 2.0, graph.num_vertices)
        assert SpMV(x1).signature() != SpMV(x2).signature()
        r1 = cache.get_or_run(SpMV(x1), graph)
        r2 = cache.get_or_run(SpMV(x2), graph)
        assert not np.array_equal(r1.values, r2.values)

    def test_signature_stable_across_instances_and_runs(self, graph):
        before = PageRank().signature()
        pr = PageRank()
        from repro.algorithms import run_vectorized

        run_vectorized(pr, graph)
        # The per-run derived state (_out_degrees) is transient: the
        # signature must not change once the algorithm has executed.
        assert pr.signature() == before

    def test_every_constructor_parameter_participates(self):
        assert PageRank(damping=0.9).signature() != PageRank().signature()
        assert (PageRank(tolerance=1e-3).signature()
                != PageRank().signature())
        assert PageRank(iterations=3).signature() != PageRank().signature()


class TestScalarStore:
    def test_round_trip_and_memoisation(self, cache, graph):
        calls = []

        def compute():
            calls.append(1)
            return 7.25

        assert cache.get_or_scalar("stat", graph, compute) == 7.25
        assert cache.get_or_scalar("stat", graph, compute) == 7.25
        assert len(calls) == 1

    def test_fresh_instance_reads_stored_scalar(self, tmp_path, graph):
        writer = RunCache(directory=tmp_path / "store")
        writer.get_or_scalar("stat", graph, lambda: 2.5)
        reader = RunCache(directory=tmp_path / "store")

        def explode():
            raise AssertionError("should have been served from disk")

        assert reader.get_or_scalar("stat", graph, explode) == 2.5
        assert reader.stats.disk_hits == 1

    def test_names_not_conflated(self, cache, graph):
        assert cache.get_or_scalar("a", graph, lambda: 1.0) == 1.0
        assert cache.get_or_scalar("b", graph, lambda: 2.0) == 2.0


class TestVertexCentricEntries:
    def test_round_trip_preserves_extra_counters(self, cache, graph):
        first = cache.get_or_run_vertex_centric(BFS(0), graph)
        cache.clear(disk=False)
        second = cache.get_or_run_vertex_centric(BFS(0), graph)
        np.testing.assert_array_equal(second.run.values, first.run.values)
        assert second.edges_examined == first.edges_examined
        assert second.vertices_scanned == first.vertices_scanned

    def test_distinct_from_edge_centric_entry(self, cache, graph):
        cache.get_or_run(BFS(0), graph)
        cache.get_or_run_vertex_centric(BFS(0), graph)
        assert cache.info()["disk_entries"] == 2


class TestSingleFlight:
    def test_stale_legacy_lock_falls_back_to_compute(self, cache, graph):
        """An *empty* (pre-PID-format) lock left by a crashed peer must
        not wedge the cache: after the timeout the caller computes."""
        cache.singleflight_timeout = 0.05
        key = cache.key(PageRank(), graph)
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache._lock_path(key).touch()
        run = cache.get_or_run(PageRank(), graph)
        assert run.iterations > 0

    def test_waiter_adopts_peer_result(self, cache, graph):
        """If the stored entry appears while waiting on the lock, the
        waiter loads it instead of recomputing."""
        # Pre-store the entry with a throwaway cache, then hold a lock
        # naming this (live) process as the owner, so it is not broken.
        peer = RunCache(directory=cache.directory, salt=cache.salt)
        stored = peer.get_or_run(PageRank(), graph)
        key = cache.key(PageRank(), graph)
        lock = cache._lock_path(key)
        lock.write_text(json.dumps({"pid": os.getpid(), "created": 0.0}))
        try:
            run = cache.get_or_run(PageRank(), graph)
        finally:
            if lock.exists():
                lock.unlink()
        np.testing.assert_array_equal(run.values, stored.values)

    def test_dead_owner_lock_broken_immediately(self, cache, graph):
        """A lock recording a dead PID is reclaimed on sight — no
        timeout wait — and the store_locks_broken counter records it."""
        from repro.obs import metrics as obs_metrics

        # A PID guaranteed dead: spawn-and-reap a trivial child.
        proc = subprocess.Popen([sys.executable, "-c", ""])
        proc.wait()
        cache.singleflight_timeout = 30.0  # a wait would hang the test
        key = cache.key(PageRank(), graph)
        cache.directory.mkdir(parents=True, exist_ok=True)
        lock = cache._lock_path(key)
        lock.write_text(json.dumps({"pid": proc.pid, "created": 0.0}))
        before = obs_metrics.get_metrics().counter(
            obs_metrics.STORE_LOCKS_BROKEN
        ).value
        run = cache.get_or_run(PageRank(), graph)
        assert run.iterations > 0
        assert not lock.exists()
        after = obs_metrics.get_metrics().counter(
            obs_metrics.STORE_LOCKS_BROKEN
        ).value
        assert after == before + 1

    def test_live_owner_lock_respected_until_timeout(self, cache, graph):
        """A lock owned by a live process is honoured: the waiter only
        computes once the single-flight timeout expires."""
        cache.singleflight_timeout = 0.05
        key = cache.key(PageRank(), graph)
        cache.directory.mkdir(parents=True, exist_ok=True)
        lock = cache._lock_path(key)
        lock.write_text(json.dumps({"pid": os.getpid(), "created": 0.0}))
        try:
            run = cache.get_or_run(PageRank(), graph)
            survived = lock.exists()
        finally:
            if lock.exists():
                lock.unlink()
        assert run.iterations > 0
        assert survived  # never broken: the owner is alive


class TestDefaultDirectory:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "hyve-repro"
