"""Property-based invariants on the device models (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    AccessKind,
    AccessPattern,
    DDR4Chip,
    DRAMConfig,
    NvSimLite,
    OnChipSRAM,
    OptimizationTarget,
    ReRAMCellParams,
    ReRAMChip,
    ReRAMConfig,
)
from repro.units import GBIT, MB

DEVICES = [ReRAMChip(), DDR4Chip(), OnChipSRAM()]
KINDS = [AccessKind.READ, AccessKind.WRITE]
PATTERNS = [AccessPattern.SEQUENTIAL, AccessPattern.RANDOM]


@given(
    st.sampled_from(DEVICES),
    st.sampled_from(KINDS),
    st.sampled_from(PATTERNS),
    st.floats(min_value=0.0, max_value=1e12),
)
@settings(max_examples=120, deadline=None)
def test_transfer_cost_non_negative_and_monotone(device, kind, pattern, bits):
    cost = device.transfer_cost(kind, bits, pattern)
    bigger = device.transfer_cost(kind, bits * 2 + device.access_bits,
                                  pattern)
    assert cost.energy >= 0 and cost.latency >= 0
    assert bigger.energy >= cost.energy
    assert bigger.latency >= cost.latency


@given(
    st.sampled_from(DEVICES),
    st.floats(min_value=0.0, max_value=1e4),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=120, deadline=None)
def test_background_energy_bounds(device, duration, gated):
    energy = device.background_energy(duration, gated)
    full = device.background_energy(duration, 0.0)
    assert 0.0 <= energy <= full + 1e-12


@given(
    st.sampled_from(DEVICES),
    st.sampled_from(KINDS),
)
@settings(max_examples=30, deadline=None)
def test_random_never_cheaper_than_sequential_latency(device, kind):
    seq = device.access_cost(kind, AccessPattern.SEQUENTIAL)
    rnd = device.access_cost(kind, AccessPattern.RANDOM)
    assert rnd.latency >= seq.latency


@given(st.sampled_from([64, 128, 256, 512, 1024]),
       st.sampled_from(list(OptimizationTarget)),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_nvsim_points_well_formed(bits, target, cell_bits):
    point = NvSimLite(ReRAMCellParams(cell_bits=cell_bits)).solve(
        bits, target
    )
    assert point.read_energy > 0
    assert point.read_period > 0
    assert point.write_energy > point.read_energy * 0.1
    assert point.write_latency >= 10e-9  # at least one set pulse


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=30, deadline=None)
def test_sram_scaling_monotone(capacity_mb):
    small = OnChipSRAM(capacity_mb * MB)
    big = OnChipSRAM(2 * capacity_mb * MB)
    sc = small.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    bc = big.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    assert bc.energy > sc.energy
    assert bc.latency > sc.latency
    assert big.standby_power > small.standby_power


@given(st.sampled_from([4, 8, 16, 32]))
@settings(max_examples=20, deadline=None)
def test_density_scaling_monotone(density_gbit):
    small = ReRAMChip(ReRAMConfig(density_bits=density_gbit * GBIT))
    big = ReRAMChip(ReRAMConfig(density_bits=2 * density_gbit * GBIT))
    assert (
        big.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL).energy
        >= small.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL).energy
    )
    assert big.standby_power >= small.standby_power


def test_modeled_absolute_update_throughput_near_paper():
    from repro.dynamic import modeled_absolute_throughput

    # Paper: 42.43-46.98 M edges/s per thread.
    assert modeled_absolute_throughput() == pytest.approx(45e6, rel=0.3)
