"""Tests for the CPU and GraphR baseline machines."""

import pytest

from repro.algorithms import BFS, PageRank, SpMV
from repro.arch.cpu import CPU_DRAM, CPU_DRAM_OPT, CPUMachine, CPUModel
from repro.arch.crossbar import (
    CROSSBAR_WRITE_ENERGY,
    CrossbarModel,
    MV_ALGORITHMS,
)
from repro.arch.graphr import GraphRConfig, GraphRMachine
from repro.arch.machine import make_machine
from repro.errors import ConfigError
from repro.units import NJ


class TestCPUMachine:
    def test_energy_is_power_times_time(self, yt_workload):
        result = CPUMachine(CPU_DRAM).run(PageRank(), yt_workload)
        r = result.report
        expected_time = r.edges_traversed / (CPU_DRAM.throughput_meps * 1e6)
        assert r.time == pytest.approx(expected_time)
        assert r.total_energy == pytest.approx(
            expected_time * (CPU_DRAM.package_power + CPU_DRAM.dram_power)
        )

    def test_opt_is_faster(self, yt_workload):
        base = CPUMachine(CPU_DRAM).run(PageRank(), yt_workload).report
        opt = CPUMachine(CPU_DRAM_OPT).run(PageRank(), yt_workload).report
        assert opt.time < base.time
        assert opt.mteps_per_watt > base.mteps_per_watt

    def test_memory_share_over_60_percent(self, yt_workload):
        report = CPUMachine(CPU_DRAM).run(PageRank(), yt_workload).report
        # Power breakdown results [22]: >60% of energy in memory for PR.
        assert report.memory_energy / report.total_energy >= 0.6

    def test_accelerator_gap_is_two_orders(self, yt_workload):
        cpu = CPUMachine(CPU_DRAM).run(PageRank(), yt_workload).report
        opt = make_machine("acc+HyVE-opt").run(PageRank(), yt_workload).report
        assert 50 < opt.mteps_per_watt / cpu.mteps_per_watt < 500

    def test_model_validation(self):
        with pytest.raises(ConfigError):
            CPUModel("x", 0.0, 50.0, 5.0)
        with pytest.raises(ConfigError):
            CPUModel("x", 100.0, -1.0, 5.0)
        with pytest.raises(ConfigError):
            CPUModel("x", 100.0, 50.0, 5.0, dram_energy_fraction=2.0)

    def test_correct_algorithm_output(self, small_rmat):
        result = CPUMachine().run(PageRank(), small_rmat)
        assert result.values.sum() == pytest.approx(1.0, abs=1e-9)


class TestCrossbarModel:
    def test_mv_energy_equation(self):
        model = CrossbarModel(navg=1.5)
        expected = model.block_energy("PR") / 1.5
        assert model.energy_per_edge("PR") == pytest.approx(expected)

    def test_nmv_more_expensive_than_mv(self):
        model = CrossbarModel(navg=1.5)
        assert model.energy_per_edge("BFS") > model.energy_per_edge("PR")

    def test_higher_navg_amortises_better(self):
        sparse = CrossbarModel(navg=1.2)
        dense = CrossbarModel(navg=2.4)
        assert dense.energy_per_edge("PR") < sparse.energy_per_edge("PR")

    def test_write_dominates_block_energy(self):
        model = CrossbarModel(navg=1.5)
        assert model.block_energy("PR") > 0.1 * CROSSBAR_WRITE_ENERGY

    def test_more_groups_faster(self):
        slow = CrossbarModel(navg=1.5, num_groups=4)
        fast = CrossbarModel(navg=1.5, num_groups=16)
        assert fast.latency_per_edge("PR") < slow.latency_per_edge("PR")

    def test_parallelism_is_navg(self):
        assert CrossbarModel(navg=1.73).parallelism == 1.73

    def test_mv_algorithms(self):
        assert MV_ALGORITHMS == {"PR", "SpMV"}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            CrossbarModel(navg=0.0)
        with pytest.raises(ConfigError):
            CrossbarModel(navg=1.5, num_groups=0)


class TestGraphRMachine:
    def test_produces_report(self, yt_workload):
        report = GraphRMachine().run(PageRank(), yt_workload).report
        assert report.machine == "GraphR"
        assert report.total_energy > 0

    def test_crossbar_processing_dominates(self, yt_workload):
        report = GraphRMachine().run(PageRank(), yt_workload).report
        from repro.arch.report import PROCESSING

        assert report.energy[PROCESSING] > 0.2 * report.total_energy

    def test_hyve_beats_graphr_on_every_algorithm(self, yt_workload):
        hyve = make_machine("acc+HyVE-opt")
        graphr = GraphRMachine()
        for factory in (PageRank, BFS, SpMV):
            g = graphr.run(factory(), yt_workload).report
            h = hyve.run(factory(), yt_workload).report
            assert g.total_energy > h.total_energy
            assert g.time > h.time
            assert g.edp > h.edp

    def test_same_algorithm_results(self, small_rmat):
        result = GraphRMachine().run(PageRank(), small_rmat)
        assert result.values.sum() == pytest.approx(1.0, abs=1e-9)

    def test_config_label(self):
        assert GraphRMachine(GraphRConfig(label="gr2")).label == "gr2"
