"""Unit tests for the streaming dynamic-graph engine (ISSUE 10).

The incremental-vs-rebuild conformance battery proper lives in the
``stream-rebuild-identity`` / ``window-invariance`` oracles
(repro/verify/oracles.py) and tests/test_temporal_properties.py; this
module pins the concrete contracts piece by piece: log validation and
round trips, FIFO temporal semantics, the bounded-staleness flush
rule, snapshot canonicalisation, and the time-sliced energy fold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.algorithms.runner import run_vectorized
from repro.arch.machine import fold_time_slices, make_machine
from repro.dynamic import (
    DEFAULT_STALENESS_K,
    MAINTAINED_ALGORITHMS,
    OPEN_END,
    READ_HEAVY,
    StreamEngine,
    TemporalEdge,
    TemporalGraph,
    UPDATE_HEAVY,
    UpdateLog,
    generate_update_log,
    measure_stream,
)
from repro.errors import ConfigError, StreamError
from repro.graph import rmat
from repro.perf.cache import temporary_run_cache

from .conftest import seeded_rng


class TestUpdateLog:
    def test_append_and_replay_state(self):
        log = UpdateLog(4, name="t")
        log.append("add", 0, 1)
        log.append("add", 0, 1)
        log.append("del", 0, 1)
        assert len(log) == 3
        assert log.open_edges == 1
        assert [u.t for u in log] == [0, 1, 2]

    def test_rejects_bad_inputs(self):
        log = UpdateLog(4)
        with pytest.raises(StreamError):
            log.append("upsert", 0, 1)
        with pytest.raises(StreamError):
            log.append("add", 0, 4)
        with pytest.raises(StreamError):
            log.append("del", 0, 1)  # nothing open
        log.append("add", 0, 1, t=5)
        with pytest.raises(StreamError):
            log.append("add", 1, 2, t=4)  # non-monotonic

    def test_dedupe_suppresses_open_duplicates(self):
        log = UpdateLog(4)
        assert log.append("add", 0, 1, dedupe=True)
        assert not log.append("add", 0, 1, dedupe=True)
        log.append("del", 0, 1)
        assert log.append("add", 0, 1, dedupe=True)  # closed => re-insert

    def test_jsonl_roundtrip(self, tmp_path):
        base = rmat(16, 48, seed=2, name="rt")
        log = generate_update_log(base, 40, seed=2, name="roundtrip")
        path = log.save(tmp_path / "log.jsonl")
        loaded = UpdateLog.load(path)
        assert loaded.name == log.name
        assert loaded.num_vertices == log.num_vertices
        assert np.array_equal(loaded.to_arrays(), log.to_arrays())

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "something-else"}\n')
        with pytest.raises(StreamError):
            UpdateLog.load(path)

    def test_extend_arrays_matches_serial_appends(self):
        base = rmat(24, 96, seed=3, name="bulk")
        log = generate_update_log(base, 120, seed=3, delete_fraction=0.4)
        events = log.to_arrays()
        serial = UpdateLog(24, name="serial")
        for t, op, s, d in events.tolist():
            serial.append("add" if op == 0 else "del", s, d, t=t)
        bulk = UpdateLog(24, name="bulk")
        for lo in range(0, len(events), 17):
            bulk.extend_arrays(events[lo:lo + 17])
        assert np.array_equal(serial.to_arrays(), bulk.to_arrays())
        assert serial.open_edges == bulk.open_edges

    def test_extend_arrays_delete_then_reinsert_same_key(self):
        log = UpdateLog(4)
        events = np.array(
            [[0, 0, 1, 2], [1, 1, 1, 2], [2, 0, 1, 2], [3, 1, 1, 2],
             [4, 0, 1, 2]],
            dtype=np.int64,
        )
        assert log.extend_arrays(events) == 5
        assert log.open_edges == 1

    def test_extend_arrays_rejects_unmatched_delete(self):
        log = UpdateLog(4)
        log.append("add", 1, 2)
        events = np.array([[1, 1, 1, 2], [2, 1, 1, 2]], dtype=np.int64)
        with pytest.raises(StreamError, match="no matching open edge"):
            log.extend_arrays(events)
        # The rejected block must not have been partially applied.
        assert len(log) == 1


class TestTemporalGraph:
    def test_fifo_delete_closes_oldest(self):
        log = UpdateLog(4)
        log.append("add", 1, 2, t=0)
        log.append("add", 1, 2, t=5)
        log.append("del", 1, 2, t=7)
        temporal = log.temporal()
        intervals = sorted(
            zip(temporal.start.tolist(), temporal.end.tolist())
        )
        assert intervals == [(0, 7), (5, OPEN_END)]

    def test_zero_width_interval_is_invisible(self):
        log = UpdateLog(4)
        log.append("add", 1, 2, t=3)
        log.append("del", 1, 2, t=3)
        temporal = log.temporal()
        assert temporal.num_intervals == 0
        assert temporal.snapshot_at(3).num_edges == 0

    def test_snapshot_is_memoised_and_canonical(self):
        base = rmat(16, 64, seed=4, name="canon")
        log = generate_update_log(base, 50, seed=4)
        temporal = log.temporal()
        t = int(log.last_time)
        assert temporal.snapshot_at(t) is temporal.snapshot_at(t)
        again = UpdateLog.from_arrays(
            log.num_vertices, log.to_arrays(), name=log.name
        ).temporal()
        assert temporal.snapshot_at(t).fingerprint() \
            == again.snapshot_at(t).fingerprint()

    def test_rejects_empty_intervals(self):
        with pytest.raises(StreamError, match="empty"):
            TemporalGraph.from_intervals(4, [(0, 1, 5, 5)])

    def test_alive_at_and_active_count(self):
        edge = TemporalEdge(0, 1, start=2, end=6)
        assert not edge.alive_at(1)
        assert edge.alive_at(2)
        assert not edge.alive_at(6)
        temporal = TemporalGraph.from_intervals(
            4, [(0, 1, 0, 4), (1, 2, 2, OPEN_END)]
        )
        assert temporal.active_count_at(0) == 1
        assert temporal.active_count_at(3) == 2
        assert temporal.active_count_at(5) == 1
        assert temporal.event_times().tolist() == [0, 2, 4]


class TestStreamEngine:
    def test_staleness_contract_bounds_pending(self):
        base = rmat(32, 128, seed=5, name="k")
        log = generate_update_log(base, 200, seed=5)
        engine = StreamEngine(32, k=16, name=log.name)
        engine.replay(log)
        assert engine.pending < 16
        assert engine.stats.max_pending_at_flush <= 16

    def test_query_answers_at_current_time(self):
        base = rmat(32, 128, seed=6, name="q")
        engine = StreamEngine.from_graph(base)
        assert engine.k == DEFAULT_STALENESS_K
        engine.ingest([("add", 1, 2), ("add", 2, 3)])
        values = engine.query("cc")
        assert engine.values_time == engine.logical_time
        assert engine.pending == 0
        rebuilt = run_vectorized(make_algorithm("cc"),
                                 engine.snapshot()).values
        assert np.array_equal(values, rebuilt)

    def test_k1_is_eager_exact_maintenance(self):
        base = rmat(24, 96, seed=7, name="eager")
        log = generate_update_log(base, 60, seed=7, delete_fraction=0.3)
        events = log.to_arrays()
        engine = StreamEngine(24, k=1, name=log.name)
        for row in events:
            engine.ingest(row.reshape(1, 4))
            # K=1: every event flushes, so values never lag the log.
            assert engine.pending == 0
            assert engine.values_time == engine.logical_time
        for name in MAINTAINED_ALGORITHMS:
            rebuilt = run_vectorized(make_algorithm(name),
                                     engine.snapshot()).values
            got = engine.query(name)
            if name == "pr":
                np.testing.assert_allclose(got, rebuilt, rtol=1e-12,
                                           atol=1e-12)
            else:
                assert np.array_equal(got, rebuilt)

    def test_incremental_matches_rebuild_across_k(self):
        base = rmat(48, 192, seed=8, name="battery")
        log = generate_update_log(base, 150, seed=8, delete_fraction=0.35)
        events = log.to_arrays()
        for k in (1, 7, 64):
            engine = StreamEngine(48, k=k, name=log.name)
            done = 0
            for prefix in (len(events) // 3, 2 * len(events) // 3,
                           len(events)):
                engine.ingest(events[done:prefix])
                done = prefix
                snapshot = engine.snapshot()
                for name in ("cc", "bfs"):
                    rebuilt = run_vectorized(make_algorithm(name),
                                             snapshot).values
                    assert np.array_equal(engine.query(name), rebuilt), \
                        f"{name} diverged at prefix {prefix} with k={k}"

    def test_historical_snapshot_matches_live_fingerprint(self):
        base = rmat(16, 64, seed=9, name="hist")
        log = generate_update_log(base, 40, seed=9)
        engine = StreamEngine(16, name=log.name)
        engine.replay(log)
        now = engine.logical_time
        live = engine.snapshot()
        historical = engine.snapshot(now)
        assert live.fingerprint() == historical.fingerprint() \
            or np.array_equal(live.src, historical.src)
        past = engine.snapshot(now // 2)
        rebuilt = UpdateLog.from_arrays(
            16, log.to_arrays(), name=log.name
        ).temporal().snapshot_at(now // 2)
        assert past.fingerprint() == rebuilt.fingerprint()

    def test_rejects_bad_configuration(self):
        with pytest.raises(StreamError):
            StreamEngine(8, k=0)
        with pytest.raises(StreamError):
            StreamEngine(8, algorithms=("pr", "sssp"))
        engine = StreamEngine(8)
        with pytest.raises(StreamError):
            engine.query("sssp")

    def test_counters_and_stats_move(self):
        from repro.obs.metrics import (MetricsRegistry, STALENESS_FLUSHES,
                                       UPDATES_APPLIED, get_metrics,
                                       set_metrics)

        set_metrics(MetricsRegistry())
        try:
            base = rmat(16, 64, seed=10, name="obs")
            engine = StreamEngine.from_graph(base, k=8)
            engine.query("cc")
            snap = get_metrics().snapshot()
            assert snap[UPDATES_APPLIED]["value"] == base.num_edges
            assert snap[STALENESS_FLUSHES]["value"] \
                == engine.stats.flushes
            assert engine.stats.queries == 1
        finally:
            set_metrics(None)


class TestMeasureStream:
    def test_mixes_run_and_cross_check(self):
        base = rmat(48, 192, seed=12, name="bench")
        log = generate_update_log(base, 300, seed=12, delete_fraction=0.2)
        for mix in (UPDATE_HEAVY, READ_HEAVY):
            result = measure_stream(log, mix)
            assert result.mix == mix.name
            assert result.num_updates == len(log)
            assert result.num_queries > 0
            assert result.updates_per_second > 0
            assert result.engine_seconds > 0
            assert result.serial_seconds > 0


class TestFoldTimeSlices:
    @pytest.fixture
    def reports(self):
        machine = make_machine("acc+HyVE")
        g1 = rmat(32, 128, seed=13, name="slice-a")
        g2 = rmat(32, 128, seed=14, name="slice-b")
        algorithm = make_algorithm("pr")
        with temporary_run_cache(""):
            return (machine.run(algorithm, g1).report,
                    machine.run(algorithm, g2).report)

    def test_width_weighted_aggregation(self, reports):
        r1, r2 = reports
        folded = fold_time_slices([(0, 3, r1), (3, 5, r2)])
        assert folded.algorithm == r1.algorithm
        assert folded.machine == r1.machine
        assert folded.iterations == 3 * r1.iterations + 2 * r2.iterations
        np.testing.assert_allclose(
            folded.total_energy,
            3 * r1.total_energy + 2 * r2.total_energy, rtol=1e-12)
        np.testing.assert_allclose(
            folded.time, 3 * r1.time + 2 * r2.time, rtol=1e-12)

    def test_rejects_bad_slices(self, reports):
        r1, _ = reports
        with pytest.raises(ConfigError):
            fold_time_slices([])
        with pytest.raises(ConfigError):
            fold_time_slices([(2, 2, r1)])
        with pytest.raises(ConfigError):
            fold_time_slices([(0, 3, r1), (2, 5, r1)])

    def test_rejects_mixed_algorithms(self, reports):
        r1, _ = reports
        machine = make_machine("acc+HyVE")
        with temporary_run_cache(""):
            other = machine.run(make_algorithm("bfs"),
                                rmat(32, 128, seed=13, name="slice-a")).report
        with pytest.raises(ConfigError):
            fold_time_slices([(0, 2, r1), (2, 4, other)])
