"""Tests for unit constants and conversions."""

import pytest

from repro import units


class TestConstants:
    def test_time_scale_ordering(self):
        assert units.PS < units.NS < units.US < units.MS < units.S

    def test_energy_scale_ordering(self):
        assert units.PJ < units.NJ < units.UJ < units.MJ < units.J

    def test_data_sizes(self):
        assert units.BYTE == 8
        assert units.KB == 8 * 1024
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB

    def test_bit_sizes(self):
        assert units.GBIT == 1024 * units.MBIT == 1024 ** 2 * units.KBIT

    def test_nanosecond_is_thousand_picoseconds(self):
        assert units.NS == pytest.approx(1000 * units.PS)


class TestMtepsPerWatt:
    def test_one_nanojoule_per_edge_is_1000(self):
        # 1 nJ/edge <=> 1000 MTEPS/W.
        assert units.mteps_per_watt(1e6, 1.0, 1e6 * 1e-9) == pytest.approx(
            1000.0
        )

    def test_time_invariance(self):
        a = units.mteps_per_watt(1e6, 1.0, 0.5)
        b = units.mteps_per_watt(1e6, 123.0, 0.5)
        assert a == pytest.approx(b)

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError):
            units.mteps_per_watt(1e6, 0.0, 1.0)

    def test_rejects_zero_energy(self):
        with pytest.raises(ValueError):
            units.mteps_per_watt(1e6, 1.0, 0.0)


class TestEdp:
    def test_product(self):
        assert units.edp(2.0, 3.0) == 6.0

    def test_zero(self):
        assert units.edp(0.0, 5.0) == 0.0


class TestFormatSi:
    def test_nano(self):
        assert units.format_si(1.2e-9, "J") == "1.2 nJ"

    def test_pico(self):
        assert units.format_si(102.07e-12, "J") == "102.1 pJ"

    def test_mega(self):
        assert units.format_si(2.5e6, "TEPS") == "2.5 MTEPS"

    def test_zero(self):
        assert units.format_si(0.0, "W") == "0 W"

    def test_unit_scale(self):
        assert units.format_si(3.2, "s") == "3.2 s"

    def test_negative(self):
        assert units.format_si(-4e-3, "J") == "-4 mJ"


class TestBitsToMb:
    def test_round_trip(self):
        assert units.bits_to_mb(2 * units.MB) == pytest.approx(2.0)
