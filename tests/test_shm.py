"""Shared-memory graph handoff: lifecycle, supervision, fallback.

The parallel paths (sweeps, experiment fan-out) publish graph arrays
into named shared-memory segments once and ship workers tiny refs; the
segments are owned by the publishing process, survive supervised pool
respawns, and are unlinked on release.  When shared memory is
unavailable everything must degrade to the old pickle-per-task path
with identical results.
"""

from __future__ import annotations

import concurrent.futures
import os

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.algorithms.runner import run_cached, run_vectorized
from repro.arch.config import Workload
from repro.arch.sweep import SweepPolicy, points_to_csv, sweep
from repro.graph import rmat
from repro.graph.graph import Graph
from repro.obs import metrics as obs_metrics
from repro.perf import shm

VALUES = [0.25, 0.5, 0.75, 1.0]


@pytest.fixture
def graph():
    return rmat(128, 512, seed=23, name="shm-rmat")


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test starts and ends with no published segments."""
    shm.release_all()
    yield
    shm.release_all()


def _attach_in_subprocess(ref):
    counter = obs_metrics.get_metrics().counter(
        obs_metrics.SHM_GRAPHS_ATTACHED
    )
    before = counter.value  # forked workers inherit parent counts
    g = shm.attach_graph(ref)
    memo_hit = shm.attach_graph(ref) is g
    return (g.num_edges, int(g.src.sum()), int(g.dst.sum()),
            memo_hit, counter.value - before)


class TestLifecycle:
    def test_share_attach_round_trip(self, graph):
        ref = shm.share_graph(graph)
        assert ref is not None
        assert ref.fingerprint == graph.fingerprint()
        attached = shm.attach_graph(ref)
        assert attached.num_vertices == graph.num_vertices
        assert np.array_equal(attached.src, graph.src)
        assert np.array_equal(attached.dst, graph.dst)
        # Zero-copy views over the segments are read-only.
        assert not attached.src.flags.writeable
        with pytest.raises(ValueError):
            attached.src[0] = 1

    def test_share_is_idempotent_per_fingerprint(self, graph):
        ref = shm.share_graph(graph)
        again = shm.share_graph(graph)
        assert again is ref
        assert shm.owned_fingerprints() == [graph.fingerprint()]

    def test_attach_is_memoised(self, graph):
        ref = shm.share_graph(graph)
        assert shm.attach_graph(ref) is shm.attach_graph(ref)

    def test_weighted_graph_round_trips(self):
        g = rmat(64, 256, seed=5, name="shm-w").with_unit_weights()
        ref = shm.share_graph(g)
        attached = shm.attach_graph(ref)
        assert np.array_equal(attached.weights, g.weights)

    def test_empty_graph_round_trips(self):
        g = Graph.empty(8, name="shm-empty")
        attached = shm.attach_graph(shm.share_graph(g))
        assert attached.num_vertices == 8
        assert attached.num_edges == 0

    def test_release_unlinks_segments(self, graph):
        ref = shm.share_graph(graph)
        assert shm.release_graph(graph.fingerprint())
        assert shm.owned_fingerprints() == []
        with pytest.raises(FileNotFoundError):
            shm.attach_graph(ref)
        # Releasing twice is a clean no-op.
        assert not shm.release_graph(graph.fingerprint())

    def test_release_all_clears_everything(self, graph):
        shm.share_graph(graph)
        shm.share_graph(rmat(32, 64, seed=1, name="shm-2"))
        shm.release_all()
        assert shm.owned_fingerprints() == []

    def test_worker_process_attaches_and_counts(self, graph):
        ref = shm.share_graph(graph)
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            edges, ssum, dsum, memo_hit, counted = pool.submit(
                _attach_in_subprocess, ref
            ).result()
        assert edges == graph.num_edges
        assert ssum == int(graph.src.sum())
        assert dsum == int(graph.dst.sum())
        assert memo_hit
        assert counted == 1.0
        # A worker attaching never steals ownership.
        assert shm.owned_fingerprints() == [graph.fingerprint()]

    def test_run_cached_accepts_ref(self, graph):
        ref = shm.share_graph(graph)
        via_ref = run_cached(PageRank(), ref)
        direct = run_vectorized(PageRank(), graph)
        assert np.allclose(via_ref.values, direct.values)


class TestWorkloadHandoff:
    def test_share_and_resolve_workload(self, graph):
        wl = Workload(graph, reported_vertices=128_000,
                      reported_edges=512_000)
        payload = shm.share_workload(wl)
        assert isinstance(payload, shm.SharedWorkloadRef)
        resolved = shm.resolve_workload(payload)
        assert resolved.reported_vertices == 128_000
        assert resolved.reported_edges == 512_000
        assert np.array_equal(resolved.graph.src, graph.src)

    def test_resolve_passes_plain_workload_through(self, graph):
        wl = Workload(graph)
        assert shm.resolve_workload(wl) is wl

    def test_experiment_manifest_attaches(self, monkeypatch, graph):
        from repro.experiments import common

        wl = Workload(graph)
        monkeypatch.setattr(common, "_WORKLOADS", {})
        monkeypatch.setattr(common, "DATASET_ORDER", [])
        manifest = {"XX": shm.share_workload(wl)}
        common.attach_workloads(manifest)
        assert np.array_equal(common._WORKLOADS["XX"].graph.src, graph.src)


class TestFallback:
    def test_share_returns_none_without_shared_memory(
        self, monkeypatch, graph
    ):
        monkeypatch.setattr(shm, "_shared_memory", None)
        assert not shm.shared_memory_available()
        assert shm.share_graph(graph) is None
        wl = Workload(graph)
        assert shm.share_workload(wl) is wl

    def test_parallel_sweep_identical_without_shared_memory(
        self, monkeypatch, graph
    ):
        """With shared memory gated off the pool falls back to pickling
        the workload per task — same results, byte for byte."""
        monkeypatch.setattr(shm, "_shared_memory", None)
        parallel = sweep("region_hit_rate", VALUES, PageRank, graph,
                         policy=SweepPolicy(max_workers=2))
        serial = sweep("region_hit_rate", VALUES, PageRank, graph)
        assert points_to_csv(parallel) == points_to_csv(serial)

    def test_creation_failure_cleans_up_partial_segments(
        self, monkeypatch, graph
    ):
        created = []
        real = shm._segment_of

        def failing(array, name_hint):
            if name_hint.endswith("-d"):
                raise OSError("no space left on /dev/shm")
            seg = real(array, name_hint)
            created.append(seg)
            return seg

        monkeypatch.setattr(shm, "_segment_of", failing)
        assert shm.share_graph(graph) is None
        assert shm.owned_fingerprints() == []
        # The src segment created before the failure was unlinked.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=created[0].name)


@pytest.mark.slow
class TestSupervisionOverShm:
    def test_pool_respawn_reuses_published_segments(self, tmp_path, graph):
        """A killed worker breaks the pool; the respawned pool's tasks
        carry the same refs and the parent's segments are still live."""
        from tests.test_sweep_supervision import _KillOnceFactory

        factory = _KillOnceFactory(str(tmp_path / "killed.marker"),
                                   os.getpid())
        points = sweep("region_hit_rate", VALUES, factory, graph,
                       policy=SweepPolicy(max_workers=2))
        assert all(p.ok for p in points)
        # The sweep's workload graph is still published, owned here.
        fingerprints = shm.owned_fingerprints()
        assert graph.fingerprint() in fingerprints
        reference = sweep("region_hit_rate", VALUES, PageRank, graph)
        for supervised, ref in zip(points, reference):
            assert supervised.report.total_energy \
                == ref.report.total_energy
