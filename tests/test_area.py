"""Tests for the silicon-area model."""

import pytest

from repro.errors import ConfigError
from repro.memory import (
    POWER_GATE_BANK_OVERHEAD,
    density_ratio,
    memory_area,
)
from repro.units import GBIT, MB


class TestAreaModel:
    def test_reram_densest(self):
        # The area-efficiency claim of Section 3.1: ReRAM beats DRAM,
        # both beat SRAM by a wide margin.
        assert density_ratio("reram", "dram") > 1.0
        assert density_ratio("dram", "sram") > 5.0

    def test_mlc_multiplies_density(self):
        slc = memory_area("reram", GBIT, cell_bits=1)
        mlc = memory_area("reram", GBIT, cell_bits=2)
        assert mlc.total_m2 == pytest.approx(slc.total_m2 / 2)

    def test_power_gate_overhead_is_small(self):
        plain = memory_area("reram", 4 * GBIT)
        gated = memory_area("reram", 4 * GBIT, power_gated_banks=8)
        overhead = gated.total_m2 / plain.total_m2 - 1.0
        assert 0.0 < overhead <= POWER_GATE_BANK_OVERHEAD * 1.01

    def test_sram_scratchpad_plausible_size(self):
        # A 2 MB scratchpad at 22 nm lands in the low square millimetres.
        area = memory_area("sram", 2 * MB)
        assert 1.0 < area.total_mm2 < 5.0

    def test_periphery_share_matches_efficiency(self):
        area = memory_area("dram", GBIT)
        array_share = area.cell_area_m2 / area.total_m2
        assert array_share == pytest.approx(0.55, abs=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            memory_area("flash", GBIT)
        with pytest.raises(ConfigError):
            memory_area("reram", -1)
        with pytest.raises(ConfigError):
            memory_area("sram", GBIT, cell_bits=2)
        with pytest.raises(ConfigError):
            memory_area("reram", GBIT, cell_bits=0)

    def test_bits_per_mm2_consistent(self):
        area = memory_area("reram", GBIT)
        assert area.bits_per_mm2 == pytest.approx(
            GBIT / area.total_mm2
        )
