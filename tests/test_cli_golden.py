"""Golden-file tests for CLI text output.

The exact text of ``repro cache info``, ``repro metrics``, ``repro
stream`` and the ``repro trace`` attribution table is part of the user
interface (people grep it, docs quote it), so it is pinned against
committed golden files in tests/golden/.  Volatile fragments are
normalised before comparison: the cache directory path (a tmp dir
here), the trace output path, the ``imbalance_cache_size`` gauge (a
process-global LRU whose size depends on what ran earlier in the
session), and the ``repro stream`` throughput numbers (wall-clock; the
staleness table around them is deterministic).

To regenerate after an intentional output change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_cli_golden.py
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from collections import OrderedDict

from repro.arch import scheduler
from repro.cli import main
from repro.perf.cache import temporary_run_cache

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture
def fresh_imbalance_memo(monkeypatch):
    """A cold process-global imbalance memo.

    The memo outlives the hermetic run cache, so whether earlier tests
    warmed it would otherwise leak into cache-miss counters and the
    `estimate_imbalance` span count.
    """
    monkeypatch.setattr(scheduler, "_IMBALANCE_CACHE", OrderedDict())


def _normalize(text: str) -> str:
    text = re.sub(r"(?m)^directory:\s+\S.*$", "directory:      <CACHE_DIR>",
                  text)
    text = re.sub(r"\[trace written to .+? \((\d+) records\)\]",
                  r"[trace written to <TRACE_FILE> (\1 records)]", text)
    text = re.sub(r"(imbalance_cache_size\s+gauge\s+)\d+", r"\g<1><N>",
                  text)
    text = re.sub(r"[\d,]+ updates/s \([\d.]+x vs serial",
                  "<RATE> updates/s (<X>x vs serial", text)
    return text


def _check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    actual = _normalize(actual)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden file {path}; run with REPRO_UPDATE_GOLDEN=1 "
        f"to create it"
    )
    expected = path.read_text()
    assert actual == expected, (
        f"{name} drifted from its golden file; if the change is "
        f"intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


@pytest.mark.golden
def test_cache_info_golden(tmp_path, capsys):
    with temporary_run_cache(tmp_path / "cache"):
        assert main(["cache", "info"]) == 0
    _check_golden("cache-info.txt", capsys.readouterr().out)


@pytest.mark.golden
def test_metrics_golden(capsys, fresh_imbalance_memo):
    with temporary_run_cache(""):
        assert main(["metrics", "--dataset", "YT", "--algorithm",
                     "pr"]) == 0
    _check_golden("metrics-pr-yt.txt", capsys.readouterr().out)


@pytest.mark.golden
def test_stream_golden(capsys):
    log = Path(__file__).parent / "data" / "tiny-updates.jsonl"
    assert main(["stream", "--log", str(log), "--k", "8"]) == 0
    _check_golden("stream-tiny.txt", capsys.readouterr().out)


@pytest.mark.golden
def test_trace_attribution_golden(tmp_path, capsys, fresh_imbalance_memo):
    with temporary_run_cache(""):
        assert main(["trace", "fig17", "--quiet", "--trace-out",
                     str(tmp_path / "trace.jsonl")]) == 0
    _check_golden("trace-fig17.txt", capsys.readouterr().out)
