"""Tests for the Algorithm-2 phase timeline (Section 4.3)."""

import pytest

from repro.algorithms import BFS, PageRank
from repro.arch.config import HyVEConfig, MemoryTechnology
from repro.arch.phases import Phase, PhaseKind, phase_profile, schedule_phases
from repro.errors import ConfigError
from repro.graph import rmat
from repro.memory.powergate import PowerGatingPolicy


@pytest.fixture(scope="module")
def graph():
    return rmat(512, 4096, seed=71, name="phases")


@pytest.fixture(scope="module")
def phases(graph):
    return schedule_phases(PageRank(), graph, HyVEConfig(num_intervals=16))


class TestTimeline:
    def test_contiguous_and_ordered(self, phases):
        assert phases[0].start == 0.0
        for a, b in zip(phases, phases[1:]):
            assert b.start == pytest.approx(a.end)
        assert all(p.duration >= 0 for p in phases)

    def test_all_six_kinds_present(self, phases):
        kinds = {p.kind for p in phases}
        assert kinds == set(PhaseKind)

    def test_processing_streams_every_edge(self, phases, graph):
        streamed_bits = sum(
            p.data_bits for p in phases if p.kind is PhaseKind.PROCESSING
        )
        assert streamed_bits == graph.num_edges * 64

    def test_step_count(self, phases):
        # P=16, N=8 -> (P/N)^2 super blocks x N steps = 4 x 8 barriers.
        barriers = [p for p in phases if p.kind is PhaseKind.SYNCHRONIZING]
        assert len(barriers) == 4 * 8

    def test_updating_once_per_column(self, phases):
        updates = [p for p in phases if p.kind is PhaseKind.UPDATING]
        assert len(updates) == 2  # q = P/N = 2 columns

    def test_loading_covers_all_vertices(self, phases, graph):
        dst_loads = [
            p for p in phases
            if p.kind is PhaseKind.LOADING and "destination" in p.detail
        ]
        total_bits = sum(p.data_bits for p in dst_loads)
        assert total_bits == graph.num_vertices * 64  # PR: 64-bit records


class TestConfigurationEffects:
    def test_no_sharing_skips_rerouting(self, graph):
        config = HyVEConfig(
            label="ns",
            num_intervals=16,
            data_sharing=False,
            power_gating=PowerGatingPolicy(enabled=False),
        )
        phases = schedule_phases(PageRank(), graph, config)
        assert not any(p.kind is PhaseKind.REROUTING for p in phases)

    def test_iterations_scale_timeline(self, graph):
        one = schedule_phases(BFS(0), graph, HyVEConfig(num_intervals=16),
                              iterations=1)
        two = schedule_phases(BFS(0), graph, HyVEConfig(num_intervals=16),
                              iterations=2)
        assert len(two) == 2 * len(one)

    def test_requires_scratchpad(self, graph):
        config = HyVEConfig(
            label="raw",
            onchip_vertex=MemoryTechnology.NONE,
            data_sharing=False,
        )
        with pytest.raises(ConfigError):
            schedule_phases(PageRank(), graph, config)

    def test_rejects_zero_iterations(self, graph):
        with pytest.raises(ConfigError):
            schedule_phases(PageRank(), graph, iterations=0)


class TestProfile:
    def test_profile_sums_to_timeline(self, phases):
        profile = phase_profile(phases)
        assert sum(profile.values()) == pytest.approx(phases[-1].end)

    def test_processing_dominates(self, phases):
        profile = phase_profile(phases)
        assert profile["Processing"] == max(profile.values())

    def test_phase_end_property(self):
        phase = Phase(PhaseKind.LOADING, 1.0, 0.5, "x")
        assert phase.end == 1.5


class TestCrossCheckWithScheduleCounts:
    """The phase timeline and the analytic counts must agree on data
    volumes for a fully-active algorithm (PageRank)."""

    def test_loading_volume_matches_equation8(self, graph):
        from repro.algorithms import PageRank, run_cached
        from repro.arch.config import Workload
        from repro.arch.scheduler import ScheduleCounts

        config = HyVEConfig(num_intervals=16)
        phases = schedule_phases(PageRank(), graph, config, iterations=1)
        run = run_cached(PageRank(), graph)
        counts = ScheduleCounts.compute(run, Workload(graph), config)

        load_bits = sum(
            p.data_bits for p in phases if p.kind is PhaseKind.LOADING
        )
        per_iteration = counts.offchip_load_bits / counts.iterations
        assert load_bits == pytest.approx(per_iteration)

    def test_updating_volume_matches_equation7(self, graph):
        from repro.algorithms import PageRank, run_cached
        from repro.arch.config import Workload
        from repro.arch.scheduler import ScheduleCounts

        config = HyVEConfig(num_intervals=16)
        phases = schedule_phases(PageRank(), graph, config, iterations=1)
        run = run_cached(PageRank(), graph)
        counts = ScheduleCounts.compute(run, Workload(graph), config)

        store_bits = sum(
            p.data_bits for p in phases if p.kind is PhaseKind.UPDATING
        )
        per_iteration = counts.offchip_store_bits / counts.iterations
        assert store_bits == pytest.approx(per_iteration)
