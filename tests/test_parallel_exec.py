"""Parallel execution: sweep(max_workers=...) and run_selected(jobs=...).

The contract under test: fan-out changes wall-clock only.  Point
order, CSV bytes, checkpoint contents, and experiment tables must be
indistinguishable from a serial run.
"""

import json

import pytest

from repro.algorithms import PageRank
from repro.arch.config import Workload
from repro.arch.sweep import (
    SweepPolicy,
    points_to_csv,
    successful_points,
    sweep,
)
from repro.errors import ConfigError, SweepPointError
from repro.graph import rmat
from repro.units import MB


@pytest.fixture(scope="module")
def workload():
    graph = rmat(1024, 8000, seed=41, name="par-sweep")
    return Workload(graph, reported_vertices=1_024_000,
                    reported_edges=8_000_000)


class TestParallelSweep:
    def test_csv_byte_identical_to_serial(self, workload):
        """Zero-fault sweep: 4-worker CSV == serial CSV, byte for byte."""
        values = [2 * MB, 4 * MB, 8 * MB, 16 * MB]
        serial = sweep("sram_bits", values, PageRank, workload)
        parallel = sweep("sram_bits", values, PageRank, workload,
                         policy=SweepPolicy(max_workers=4))
        assert points_to_csv(parallel) == points_to_csv(serial)

    def test_order_matches_values(self, workload):
        points = sweep("num_pus", [8, 2, 4], PageRank, workload,
                       policy=SweepPolicy(max_workers=3))
        assert [p.value for p in points] == [8, 2, 4]

    def test_isolated_failure_in_worker(self, workload):
        points = sweep("num_pus", [4, -1, 8], PageRank, workload,
                       policy=SweepPolicy(max_workers=4,
                                          isolate_errors=True))
        assert len(points) == 3
        assert [p.value for p in successful_points(points)] == [4, 8]
        assert "ConfigError" in points[1].error

    def test_strict_failure_raises_in_parent(self, workload):
        with pytest.raises(SweepPointError):
            sweep("num_pus", [4, -1], PageRank, workload,
                  policy=SweepPolicy(max_workers=2))

    def test_checkpoint_written_in_order(self, workload, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        values = [2, 4, 8]
        sweep("num_pus", values, PageRank, workload,
              policy=SweepPolicy(max_workers=3, checkpoint_path=ckpt))
        records = [json.loads(line)
                   for line in ckpt.read_text().splitlines()]
        assert [r["value_repr"] for r in records] == ["2", "4", "8"]

    def test_checkpoint_resume_skips_finished(self, workload, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        policy = SweepPolicy(max_workers=2, checkpoint_path=ckpt)
        first = sweep("num_pus", [2, 4], PageRank, workload, policy=policy)
        resumed = sweep("num_pus", [2, 4, 8], PageRank, workload,
                        policy=policy)
        assert points_to_csv(resumed[:2]) == points_to_csv(first)
        assert resumed[2].ok

    def test_single_pending_point_stays_serial(self, workload):
        # One point: no pool is spun up, but the result is the same
        # shape either way.
        points = sweep("num_pus", [4], PageRank, workload,
                       policy=SweepPolicy(max_workers=4))
        assert points[0].ok


class TestPolicyValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigError):
            SweepPolicy(max_workers=0)


class TestPointsToCsv:
    def test_header_and_failed_rows(self, workload):
        points = sweep("num_pus", [4, -1], PageRank, workload,
                       policy=SweepPolicy(isolate_errors=True))
        text = points_to_csv(points)
        lines = text.splitlines()
        assert lines[0] == ("field,value,label,energy_j,time_s,"
                            "mteps_per_watt,iterations,edges_streamed,"
                            "retries,attempts,error")
        assert len(lines) == 3
        ok_row, bad_row = lines[1], lines[2]
        assert ok_row.startswith("num_pus,4,")
        assert ",,," not in ok_row
        assert "ConfigError" in bad_row


class TestParallelExperiments:
    def test_jobs_matches_serial_tables(self):
        from repro.experiments import run_selected

        names = ["table3"]
        serial = run_selected(names, save=False)
        fanned = run_selected(names, save=False, jobs=2)
        assert set(serial) == set(fanned)
        for name in names:
            assert fanned[name].format() == serial[name].format()
            assert fanned[name].to_csv() == serial[name].to_csv()

    def test_jobs_validated(self):
        from repro.experiments import run_selected

        with pytest.raises(ConfigError):
            run_selected(["table3"], save=False, jobs=0)

    def test_unknown_name_rejected(self):
        from repro.experiments import run_selected

        with pytest.raises(ConfigError):
            run_selected(["fig99"], save=False)
