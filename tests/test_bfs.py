"""Tests for edge-centric BFS."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import BFS, UNREACHED, run_vectorized
from repro.errors import GraphError
from repro.graph import Graph, path, star


class TestCorrectness:
    def test_matches_networkx(self, small_rmat):
        run = run_vectorized(BFS(0), small_rmat)
        lengths = nx.single_source_shortest_path_length(
            small_rmat.to_networkx(), 0
        )
        for v in range(small_rmat.num_vertices):
            expected = lengths.get(v, UNREACHED)
            assert run.values[v] == expected

    def test_path_levels(self):
        run = run_vectorized(BFS(0), path(6))
        assert run.values.tolist() == [0, 1, 2, 3, 4, 5]

    def test_star_one_hop(self):
        run = run_vectorized(BFS(0), star(5))
        assert run.values[0] == 0
        assert (run.values[1:] == 1).all()

    def test_unreachable_vertices_keep_sentinel(self):
        g = Graph.from_edges(4, [(0, 1)])
        run = run_vectorized(BFS(0), g)
        assert run.values[2] == UNREACHED
        assert run.values[3] == UNREACHED

    def test_custom_root(self):
        run = run_vectorized(BFS(3), path(6))
        assert run.values[3] == 0
        assert run.values[5] == 2
        assert run.values[0] == UNREACHED

    def test_iterations_equal_depth_plus_fixpoint_pass(self):
        run = run_vectorized(BFS(0), path(6))
        # 5 productive sweeps + 1 confirming convergence.
        assert run.iterations == 6


class TestValidation:
    def test_rejects_root_out_of_range(self):
        with pytest.raises(GraphError):
            run_vectorized(BFS(10), path(5))

    def test_rejects_negative_root(self):
        with pytest.raises(ValueError):
            BFS(-1)

    def test_rejects_empty_graph(self):
        with pytest.raises(GraphError):
            run_vectorized(BFS(0), Graph.empty(0))


class TestActivity:
    def test_initial_active_is_one(self, small_rmat):
        assert BFS(0).initial_active(small_rmat) == 1

    def test_active_sources_recorded(self):
        run = run_vectorized(BFS(0), path(4))
        assert len(run.active_sources) == run.iterations
        assert run.active_sources[0] == 1

    def test_activity_shrinks_at_fixpoint(self, small_rmat):
        run = run_vectorized(BFS(0), small_rmat)
        assert run.active_sources[-1] < small_rmat.num_vertices
