"""Tests for the machine-level area report."""

import pytest

from repro.algorithms import PageRank
from repro.arch import machine_area
from repro.arch.config import HyVEConfig, MemoryTechnology
from repro.memory.powergate import PowerGatingPolicy


class TestMachineArea:
    def test_accelerator_die_dominated_by_sram(self, lj_workload):
        area = machine_area(PageRank(), lj_workload)
        assert area.onchip_sram.total_mm2 > area.pu_area_mm2
        assert area.accelerator_die_mm2 == pytest.approx(
            area.onchip_sram.total_mm2
            + area.pu_area_mm2
            + area.router_area_mm2
        )

    def test_power_gate_area_penalty_low(self, lj_workload):
        # Section 4.1: "low area penalty".
        area = machine_area(PageRank(), lj_workload)
        assert 0.0 < area.power_gate_overhead <= 0.02 * 1.01

    def test_no_gates_without_bpg(self, lj_workload):
        config = HyVEConfig(
            label="npg", power_gating=PowerGatingPolicy(enabled=False)
        )
        area = machine_area(PageRank(), lj_workload, config)
        assert area.power_gate_overhead == 0.0

    def test_reram_edges_smaller_than_dram_edges(self, lj_workload):
        reram = machine_area(PageRank(), lj_workload)
        dram = machine_area(
            PageRank(),
            lj_workload,
            HyVEConfig(
                label="sd",
                edge_memory=MemoryTechnology.DRAM,
                power_gating=PowerGatingPolicy(enabled=False),
            ),
        )
        # Same chip count (rank-provisioned) but denser cells.
        assert reram.edge_memory.total_mm2 < dram.edge_memory.total_mm2

    def test_chip_counts_match_machine(self, lj_workload):
        area = machine_area(PageRank(), lj_workload)
        assert area.edge_chips >= 8
        assert area.vertex_chips >= 1

    def test_bare_graph(self, small_rmat):
        area = machine_area(PageRank(), small_rmat)
        assert area.memory_system_mm2 > 0
