"""Tests for the headline and sensitivity experiment drivers."""

import pytest

from repro.experiments import headline, sensitivity
from repro.experiments.sensitivity import opt_over_sd, perturbed


class TestHeadline:
    @pytest.fixture(scope="class")
    def result(self):
        return headline.run()

    def test_every_claim_has_both_columns(self, result):
        for claim, paper, reproduced in result.rows:
            assert claim and paper and reproduced

    def test_covers_all_banner_numbers(self, result):
        claims = " | ".join(result.column("Claim"))
        for keyword in ("acc+DRAM", "CPU+DRAM", "sharing", "power-gating",
                        "memory energy", "GraphR", "preprocessing",
                        "dynamic"):
            assert keyword in claims


class TestSensitivity:
    def test_perturbation_restores_constant(self):
        from repro.arch import params

        original = params.PIPELINE_ENERGY_PER_EDGE
        with perturbed("repro.arch.params", "PIPELINE_ENERGY_PER_EDGE", 2.0):
            assert params.PIPELINE_ENERGY_PER_EDGE == 2.0 * original
        assert params.PIPELINE_ENERGY_PER_EDGE == original

    def test_opt_over_sd_above_paper_floor(self):
        assert opt_over_sd() > 1.5

    def test_perturbation_moves_the_ratio(self):
        base = opt_over_sd()
        with perturbed("repro.memory.reram", "STREAM_FACTOR", 1.5):
            heavier = opt_over_sd()
        assert heavier != pytest.approx(base, rel=1e-3)

    def test_full_sweep_robust(self):
        result = sensitivity.run(factors=(0.7, 1.3))
        for row in result.rows:
            assert all(ratio > 1.0 for ratio in row[1:])
