"""Tests for graph manipulation utilities."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    compact,
    filter_by_degree,
    induced_subgraph,
    largest_component,
    merge,
    path,
    rmat,
)


class TestInducedSubgraph:
    def test_basic(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.array([2, 3, 4]))
        assert sub.num_vertices == 3
        # Edges within {2,3,4}: (2,3), (2,4), (3,4).
        assert sub.num_edges == 3
        assert mapping.tolist() == [2, 3, 4]

    def test_id_compaction(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.array([6, 2]))
        # (6, 2) becomes (0 -> 1) after renumbering in selection order.
        assert sub.has_edge(0, 1)

    def test_preserves_weights(self, weighted_graph):
        keep = np.arange(weighted_graph.num_vertices // 2)
        sub, _ = induced_subgraph(weighted_graph, keep)
        assert sub.is_weighted

    def test_empty_selection(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.array([], dtype=int))
        assert sub.num_vertices == 0
        assert sub.num_edges == 0

    def test_rejects_duplicates(self, tiny_graph):
        with pytest.raises(GraphError):
            induced_subgraph(tiny_graph, np.array([1, 1]))

    def test_rejects_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            induced_subgraph(tiny_graph, np.array([99]))


class TestLargestComponent:
    def test_two_components(self):
        g = Graph.from_edges(7, [(0, 1), (1, 2), (2, 0), (4, 5)])
        lcc, members = largest_component(g)
        assert sorted(members.tolist()) == [0, 1, 2]
        assert lcc.num_edges == 3

    def test_connected_graph_unchanged_size(self):
        g = path(6)
        lcc, members = largest_component(g)
        assert lcc.num_vertices == 6
        assert lcc.num_edges == 5

    def test_empty_graph(self):
        lcc, members = largest_component(Graph.empty(0))
        assert lcc.num_vertices == 0


class TestDegreeFilter:
    def test_drops_isolated(self):
        g = Graph.from_edges(5, [(0, 1)])
        filtered, members = filter_by_degree(g, min_degree=1)
        assert sorted(members.tolist()) == [0, 1]
        assert filtered.num_edges == 1

    def test_high_floor(self, small_rmat):
        filtered, members = filter_by_degree(small_rmat, min_degree=10)
        degrees = small_rmat.out_degrees() + small_rmat.in_degrees()
        assert members.size == int((degrees >= 10).sum())

    def test_rejects_negative(self, tiny_graph):
        with pytest.raises(GraphError):
            filter_by_degree(tiny_graph, min_degree=-1)

    def test_compact_alias(self):
        g = Graph.from_edges(10, [(0, 9)])
        compacted, members = compact(g)
        assert compacted.num_vertices == 2
        assert compacted.has_edge(0, 1)


class TestMerge:
    def test_disjoint_union(self):
        a = path(3)
        b = path(2)
        merged = merge([a, b])
        assert merged.num_vertices == 5
        assert merged.num_edges == 3
        assert merged.has_edge(3, 4)  # b's edge, offset by 3

    def test_empty_list(self):
        assert merge([]).num_vertices == 0

    def test_weighted_merge(self, weighted_graph):
        merged = merge([weighted_graph, weighted_graph])
        assert merged.is_weighted
        assert merged.num_edges == 2 * weighted_graph.num_edges

    def test_rejects_mixed_weighting(self, weighted_graph, tiny_graph):
        with pytest.raises(GraphError):
            merge([weighted_graph, tiny_graph])
