"""Property-based tests for the streaming/temporal layer (ISSUE 10).

Generated update logs — inserts, FIFO deletes, re-inserts of the same
packed key, duplicate suppression, interleaved timestamp advances —
drive four contracts:

* snapshots are piecewise constant between event times and agree with
  a plain Counter reference model on the live-edge count;
* ``snapshot_at`` fingerprints are invariant to how the log was built
  (per-event appends, one bulk array, arbitrary ``extend_arrays``
  chunkings);
* interval edges are well-formed ``[start, end)`` half-open spans;
* the stream engine matches a from-scratch rebuild for every chunking
  of the same log, and K=1 degenerates to eager exact maintenance.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import make_algorithm
from repro.algorithms.runner import run_vectorized
from repro.dynamic import OPEN_END, StreamEngine, UpdateLog
from repro.perf.cache import temporary_run_cache

NUM_VERTICES = 10

#: Each drawn step is (selector, src, dst, time-advance).  The selector
#: picks delete-an-open-edge (FIFO re-insert churn) vs add-an-edge, so
#: every generated log is valid by construction.
_steps = st.lists(
    st.tuples(
        st.integers(0, 9),
        st.integers(0, NUM_VERTICES - 1),
        st.integers(0, NUM_VERTICES - 1),
        st.integers(0, 2),
    ),
    min_size=1,
    max_size=50,
)


def _build_log(steps, name="prop"):
    """Turn drawn steps into a valid log plus a Counter reference of the
    open-edge multiset."""
    log = UpdateLog(NUM_VERTICES, name=name)
    open_edges: Counter = Counter()
    t = 0
    for selector, src, dst, dt in steps:
        t += dt
        if selector < 4 and open_edges:
            keys = sorted(open_edges)
            src, dst = keys[selector % len(keys)]
            log.append("del", src, dst, t=t)
            open_edges[(src, dst)] -= 1
            if not open_edges[(src, dst)]:
                del open_edges[(src, dst)]
        else:
            log.append("add", src, dst, t=t)
            open_edges[(src, dst)] += 1
    return log, open_edges


@settings(max_examples=40, deadline=None)
@given(steps=_steps, probe=st.integers(0, 60))
def test_snapshot_matches_counter_reference(steps, probe):
    """snapshot_at(t) holds exactly the edges open after replaying every
    event with timestamp <= t (end-exclusive: a delete at t hides the
    edge at t), and is constant between event times."""
    log, _ = _build_log(steps)
    temporal = log.temporal()
    reference: Counter = Counter()
    for update in log:
        if update.t > probe:
            break
        key = (update.src, update.dst)
        reference[key] += 1 if update.op == "add" else -1
    expected = sum(reference.values())
    snapshot = temporal.snapshot_at(probe)
    assert snapshot.num_edges == expected
    got = Counter(zip(snapshot.src.tolist(), snapshot.dst.tolist()))
    assert got == +reference
    # Piecewise constant: identical topology at the floor event time
    # (fingerprints differ by design — the name embeds t, so each query
    # time keys its own run-cache entry).
    times = temporal.event_times()
    below = times[times <= probe]
    floor = int(below[-1]) if below.size else 0
    at_floor = temporal.snapshot_at(floor)
    assert np.array_equal(snapshot.src, at_floor.src)
    assert np.array_equal(snapshot.dst, at_floor.dst)


@settings(max_examples=40, deadline=None)
@given(steps=_steps, chunk=st.integers(1, 7))
def test_fingerprint_stable_across_construction_routes(steps, chunk):
    """The same event stream yields bit-identical snapshots whether the
    log was built by per-event appends, one bulk array, or arbitrary
    extend_arrays chunkings."""
    serial, _ = _build_log(steps)
    events = serial.to_arrays()
    bulk = UpdateLog.from_arrays(NUM_VERTICES, events, name=serial.name)
    chunked = UpdateLog(NUM_VERTICES, name=serial.name)
    for lo in range(0, len(events), chunk):
        chunked.extend_arrays(events[lo:lo + chunk])
    probe = int(serial.last_time)
    want = serial.temporal().snapshot_at(probe).fingerprint()
    assert bulk.temporal().snapshot_at(probe).fingerprint() == want
    assert chunked.temporal().snapshot_at(probe).fingerprint() == want


@settings(max_examples=40, deadline=None)
@given(steps=_steps)
def test_intervals_are_half_open_and_account_for_every_add(steps):
    log, open_edges = _build_log(steps)
    temporal = log.temporal()
    assert np.all(temporal.start < temporal.end)
    open_intervals = int(np.count_nonzero(temporal.end == OPEN_END))
    assert open_intervals == sum(open_edges.values()) == log.open_edges
    adds = sum(1 for u in log if u.op == "add")
    zero_width = adds - temporal.num_intervals
    assert zero_width >= 0  # only zero-width [t, t) spans may be dropped


@settings(max_examples=40, deadline=None)
@given(steps=_steps)
def test_dedupe_gives_set_semantics(steps):
    """Replaying only the adds with dedupe=True keeps at most one open
    instance per key: append returns False iff the key is already open."""
    log = UpdateLog(NUM_VERTICES, name="dedupe")
    open_keys = set()
    for _, src, dst, _ in steps:
        accepted = log.append("add", src, dst, dedupe=True)
        assert accepted == ((src, dst) not in open_keys)
        open_keys.add((src, dst))
    assert log.open_edges == len(open_keys)


@settings(max_examples=25, deadline=None)
@given(steps=_steps, k=st.integers(1, 9), chunk=st.integers(1, 11))
def test_engine_matches_rebuild_for_any_chunking(steps, k, chunk):
    """Incremental maintenance is bit-identical to a from-scratch
    rebuild at the same logical time, for every (k, ingest-chunking)."""
    log, _ = _build_log(steps)
    events = log.to_arrays()
    with temporary_run_cache(""):
        engine = StreamEngine(
            NUM_VERTICES, algorithms=("cc", "bfs"), k=k, name=log.name
        )
        for lo in range(0, len(events), chunk):
            engine.ingest(events[lo:lo + chunk])
        t = engine.logical_time
        rebuilt = UpdateLog.from_arrays(
            NUM_VERTICES, events, name=log.name
        ).temporal().snapshot_at(t)
        assert engine.snapshot(t).fingerprint() == rebuilt.fingerprint()
        for name in ("cc", "bfs"):
            want = run_vectorized(make_algorithm(name), rebuilt).values
            assert np.array_equal(engine.query(name), want), name


@settings(max_examples=25, deadline=None)
@given(steps=_steps)
def test_k1_is_eager(steps):
    """K=1 flushes on every event: values never lag the log, even
    without queries forcing a flush."""
    log, _ = _build_log(steps)
    with temporary_run_cache(""):
        engine = StreamEngine(
            NUM_VERTICES, algorithms=("cc",), k=1, name=log.name
        )
        for row in log.to_arrays():
            engine.ingest(row.reshape(1, 4))
            assert engine.pending == 0
            assert engine.values_time == engine.logical_time
