"""Tests for simulate-once / price-many batched evaluation.

The contract under test is *bit-identity*: the memoized counts plus the
vectorized fold must reproduce the serial pipeline exactly — same
report fields, same energy-dict insertion order, same ``repr`` of every
float — across machines, algorithms, workloads, fault fallback, and
the sweep's batched serial path.
"""

import json

import pytest

from repro.algorithms import ConnectedComponents, PageRank
from repro.arch.config import NAMED_CONFIGS, HyVEConfig, Workload
from repro.arch.machine import AcceleratorMachine, fold_many
from repro.arch.sweep import SweepPolicy, points_to_csv, sweep
from repro.errors import ConfigError
from repro.faults import make_profile
from repro.perf.batch import (
    counts_cache_key,
    group_by_counts_key,
    run_grid,
    scheduled_counts,
)
from repro.perf.cache import RunCache, get_run_cache, set_run_cache
from repro.units import MB


def _assert_reports_identical(batched, serial) -> None:
    """Field-for-field (and float-repr) equality of two reports."""
    assert list(batched.energy.items()) == list(serial.energy.items())
    assert batched.__dict__ == serial.__dict__
    assert repr(batched.total_energy) == repr(serial.total_energy)
    assert repr(batched.time) == repr(serial.time)
    assert repr(batched.mteps_per_watt) == repr(serial.mteps_per_watt)


@pytest.fixture
def workloads(small_rmat, weighted_graph):
    return {
        "small": Workload(small_rmat),
        "weighted": Workload(weighted_graph, reported_vertices=256_000,
                             reported_edges=1_024_000),
    }


class TestFoldManyIdentity:
    """fold_many == a loop of AcceleratorMachine.run, bit for bit."""

    @pytest.mark.parametrize("factory", [PageRank, ConnectedComponents],
                             ids=["pr", "cc"])
    @pytest.mark.parametrize("workload_name", ["small", "weighted"])
    def test_named_machines_grid(self, workloads, workload_name, factory):
        workload = workloads[workload_name]
        configs = [make() for make in NAMED_CONFIGS.values()]
        batched = run_grid(factory(), workload, configs)
        assert len(batched) == len(configs)
        for config, result in zip(configs, batched):
            serial = AcceleratorMachine(config).run(factory(), workload)
            _assert_reports_identical(result.report, serial.report)

    def test_direct_fold_matches_run(self, workloads):
        from repro.algorithms.runner import run_cached

        workload = workloads["small"]
        config = HyVEConfig(label="direct")
        run = run_cached(PageRank(), workload.graph)
        counts = scheduled_counts(run, workload, config)
        [report] = fold_many(run, counts, workload, [config])
        serial = AcceleratorMachine(config).run(PageRank(), workload)
        _assert_reports_identical(report, serial.report)

    def test_empty_grid(self, workloads):
        assert run_grid(PageRank(), workloads["small"], []) == []

    def test_rejects_mixed_counts_group(self, workloads):
        from repro.algorithms.runner import run_cached

        workload = workloads["small"]
        a, b = HyVEConfig(num_pus=8), HyVEConfig(num_pus=16)
        run = run_cached(PageRank(), workload.graph)
        counts = scheduled_counts(run, workload, a)
        with pytest.raises(ConfigError):
            fold_many(run, counts, workload, [a, b])

    def test_grouping_separates_counts_keys(self, workloads):
        from repro.algorithms.runner import run_cached

        workload = workloads["small"]
        configs = [HyVEConfig(num_pus=8), HyVEConfig(num_pus=16),
                   HyVEConfig(num_pus=8, sram_bits=4 * MB)]
        run = run_cached(PageRank(), workload.graph)
        groups = group_by_counts_key(run, workload, configs)
        # SRAM size is a pricing knob at fixed P: indices 0 and 2 share.
        assert sorted(map(sorted, groups.values())) == [[0, 2], [1]]


class TestFaultFallback:
    def test_faulted_grid_matches_serial(self, workloads):
        workload = workloads["small"]
        faults = make_profile("mild", seed=7)
        configs = [make() for make in NAMED_CONFIGS.values()]
        batched = run_grid(PageRank(), workload, configs, faults=faults)
        for config, result in zip(configs, batched):
            serial = AcceleratorMachine(config, faults=faults).run(
                PageRank(), workload
            )
            _assert_reports_identical(result.report, serial.report)
            assert result.faults is not None


class TestCountsCache:
    def test_counts_key_excludes_pricing_knobs(self, workloads):
        from repro.algorithms.runner import run_cached
        from repro.memory.powergate import PowerGatingPolicy

        workload = workloads["small"]
        run = run_cached(PageRank(), workload.graph)
        base = HyVEConfig()
        priced = HyVEConfig(
            power_gating=PowerGatingPolicy(idle_timeout=5e-6)
        )
        assert (counts_cache_key(run, workload, base)
                == counts_cache_key(run, workload, priced))
        structural = HyVEConfig(data_sharing=False)
        assert (counts_cache_key(run, workload, base)
                != counts_cache_key(run, workload, structural))

    def test_counts_round_trip_through_disk(self, workloads, tmp_path):
        from repro.algorithms.runner import run_cached
        from repro.arch.scheduler import ScheduleCounts

        workload = workloads["small"]
        config = HyVEConfig()
        run = run_cached(PageRank(), workload.graph)
        fresh = ScheduleCounts.compute(run, workload, config)
        previous = get_run_cache()
        try:
            set_run_cache(RunCache(directory=tmp_path))
            first = scheduled_counts(run, workload, config)
            assert first == fresh
            # A cold process (fresh memory level) reads the disk entry.
            set_run_cache(RunCache(directory=tmp_path))
            again = scheduled_counts(run, workload, config)
            assert again == fresh
            stats = get_run_cache().stats
            assert stats.counts_disk_hits == 1
            assert stats.counts_misses == 0
        finally:
            set_run_cache(previous)

    def test_counts_stats_progress(self, workloads):
        workload = workloads["small"]
        cache = get_run_cache()
        misses = cache.stats.counts_misses
        lookups = cache.stats.counts_lookups
        configs = [HyVEConfig(num_pus=4, label="a"),
                   HyVEConfig(num_pus=4, label="b")]
        run_grid(PageRank(), workload, configs)
        assert cache.stats.counts_lookups > lookups
        # Both points share one key: at most one fresh expansion.
        assert cache.stats.counts_misses - misses <= 1
        assert "counts cache:" in cache.stats.counts_summary()


class TestBatchedSweep:
    def _policies(self, **kwargs):
        return (SweepPolicy(batch=True, **kwargs),
                SweepPolicy(batch=False, **kwargs))

    def test_csv_byte_identity(self, small_rmat):
        workload = Workload(small_rmat)
        batched_policy, serial_policy = self._policies()
        a = sweep("sram_bits", [2 * MB, 4 * MB, 8 * MB], PageRank,
                  workload, policy=batched_policy)
        b = sweep("sram_bits", [2 * MB, 4 * MB, 8 * MB], PageRank,
                  workload, policy=serial_policy)
        assert points_to_csv(a) == points_to_csv(b)

    def test_checkpoint_byte_identity(self, small_rmat, tmp_path):
        workload = Workload(small_rmat)
        ckpt_a = tmp_path / "batched.jsonl"
        ckpt_b = tmp_path / "serial.jsonl"
        values = [4, -1, 8]
        sweep("num_pus", values, PageRank, workload,
              policy=SweepPolicy(batch=True, isolate_errors=True,
                                 checkpoint_path=ckpt_a))
        sweep("num_pus", values, PageRank, workload,
              policy=SweepPolicy(batch=False, isolate_errors=True,
                                 checkpoint_path=ckpt_b))
        assert ckpt_a.read_bytes() == ckpt_b.read_bytes()
        for line in ckpt_a.read_text().splitlines():
            json.loads(line)  # every record stays valid JSON

    def test_faulted_sweep_not_batched_still_identical(self, small_rmat):
        workload = Workload(small_rmat)
        faults = make_profile("mild", seed=3)
        batched_policy, serial_policy = self._policies()
        a = sweep("num_pus", [4, 8], PageRank, workload,
                  policy=batched_policy, faults=faults)
        b = sweep("num_pus", [4, 8], PageRank, workload,
                  policy=serial_policy, faults=faults)
        assert points_to_csv(a) == points_to_csv(b)


class TestImbalanceMemo:
    def test_lru_stays_bounded(self):
        from repro.arch import scheduler
        from repro.obs import metrics as obs_metrics

        for i in range(scheduler._IMBALANCE_CACHE_CAP + 16):
            scheduler._imbalance_remember((f"fp{i}", 8, True), 1.0 + i)
        assert (len(scheduler._IMBALANCE_CACHE)
                == scheduler._IMBALANCE_CACHE_CAP)
        gauge = obs_metrics.get_metrics().gauge(
            obs_metrics.IMBALANCE_CACHE_SIZE
        )
        assert gauge.value == len(scheduler._IMBALANCE_CACHE)
        # Oldest entries were evicted, newest survive.
        assert ("fp0", 8, True) not in scheduler._IMBALANCE_CACHE
        last = scheduler._IMBALANCE_CACHE_CAP + 15
        assert (f"fp{last}", 8, True) in scheduler._IMBALANCE_CACHE
