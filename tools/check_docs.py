#!/usr/bin/env python
"""Docs gate: check markdown links/anchors and run doc doctests.

Two checks, both over ``docs/*.md`` plus ``README.md``:

1. **Links** — every relative markdown link must point at an existing
   file (resolved from the linking file's directory), and every
   fragment (``file.md#section`` or in-page ``#section``) must match a
   heading anchor in the target file, using GitHub's slug rules
   (lowercase, punctuation stripped, spaces to hyphens).  External
   links (``http(s)://``, ``mailto:``) are not fetched.
2. **Doctests** — fenced ``>>>`` examples in ``docs/observability.md``
   are executed with :mod:`doctest` so the documented API stays real.

Usage (CI runs exactly this)::

    python tools/check_docs.py

Exits non-zero listing every broken link/anchor or failing example.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Files whose fenced ``>>>`` examples must execute cleanly.
DOCTEST_FILES = (
    "docs/autotuning.md",
    "docs/observability.md",
    "docs/scaling.md",
    "docs/streaming.md",
)

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, hyphenate."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    """All anchor slugs defined by a markdown file's headings."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path: Path):
    """Yield (lineno, target) for every markdown link in ``path``."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_links(files: list[Path]) -> list[str]:
    problems: list[str] = []
    for path in files:
        try:
            rel = path.relative_to(REPO_ROOT)
        except ValueError:  # checking a file outside the repo (tests)
            rel = path
        for lineno, target in iter_links(path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            if base:
                dest = (path.parent / base).resolve()
                if not dest.exists():
                    problems.append(
                        f"{rel}:{lineno}: broken link -> {target}"
                    )
                    continue
            else:
                dest = path.resolve()
            if fragment:
                if dest.suffix.lower() != ".md" or dest.is_dir():
                    continue
                if fragment not in heading_anchors(dest):
                    problems.append(
                        f"{rel}:{lineno}: broken anchor -> {target}"
                    )
    return problems


def run_doctests(files: tuple[str, ...]) -> list[str]:
    problems: list[str] = []
    for name in files:
        path = REPO_ROOT / name
        if not path.exists():
            problems.append(f"{name}: doctest target missing")
            continue
        failures, attempted = doctest.testfile(
            str(path), module_relative=False, verbose=False,
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        )
        if attempted == 0:
            problems.append(f"{name}: no doctest examples found")
        elif failures:
            problems.append(
                f"{name}: {failures}/{attempted} doctest example(s) failed"
            )
    return problems


def main() -> int:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    files.append(REPO_ROOT / "README.md")
    problems = check_links(files)
    problems += run_doctests(DOCTEST_FILES)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} docs problem(s)", file=sys.stderr)
        return 1
    checked = len(files)
    print(f"docs ok: {checked} file(s) link-checked, "
          f"{len(DOCTEST_FILES)} doctested")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
