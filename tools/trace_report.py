#!/usr/bin/env python
"""Fold a JSONL trace into a per-phase time/energy attribution table.

Usage::

    PYTHONPATH=src python -m repro trace headline --trace-out t.jsonl
    python tools/trace_report.py t.jsonl
    python tools/trace_report.py t.jsonl --json

Reads a trace recorded by :mod:`repro.obs.trace` (schema
``hyve-trace-v1``; any ``--trace-out`` flag or the ``repro trace``
subcommand produces one), validates every record, and prints the table
built by :func:`repro.obs.attribution.format_attribution`: per-phase
modelled seconds and joules, their shares, and the delta against the
EnergyReport totals recorded in the same trace (zero by construction —
both are emitted from the same numbers).

``--json`` emits the folded attribution as a JSON object instead, for
scripting.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def attribution_to_dict(attribution) -> dict:
    return {
        "time_s": attribution.time_s,
        "energy_j": attribution.energy_j,
        "total_time_s": attribution.total_time_s,
        "total_energy_j": attribution.total_energy_j,
        "reported_time_s": attribution.reported_time_s,
        "reported_energy_j": attribution.reported_energy_j,
        "reports": attribution.reports,
        "span_count": attribution.span_count,
        "event_count": attribution.event_count,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace_report",
        description="per-phase time/energy attribution of a JSONL trace",
    )
    parser.add_argument("trace", help="trace file (hyve-trace-v1 JSONL)")
    parser.add_argument("--json", action="store_true",
                        help="emit the folded attribution as JSON")
    args = parser.parse_args(argv)

    from repro.errors import ReproError
    from repro.obs import fold_records, format_attribution
    from repro.obs.trace import read_trace

    try:
        attribution = fold_records(read_trace(args.trace))
        if args.json:
            print(json.dumps(attribution_to_dict(attribution), indent=2))
        else:
            print(format_attribution(attribution))
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
