#!/usr/bin/env python
"""Timing harness CLI: record experiment wall-clock into BENCH_*.json.

Two modes:

* default — time experiment drivers in-process (optionally fanned out
  with ``--jobs``) via :func:`repro.perf.bench.bench_experiments` and
  write the payload::

      PYTHONPATH=src python tools/bench.py --output BENCH_2.json
      PYTHONPATH=src python tools/bench.py --jobs 4

* ``--smoke`` — the CI regression check: run one experiment twice in
  fresh subprocesses sharing a fresh run-cache directory, and fail
  (exit 1) unless the cache-warm second run is measurably faster than
  the cache-cold first run.  The measured times are written to
  ``--output`` as well, so CI can upload them as an artifact::

      python tools/bench.py --smoke --output BENCH_2.json

* ``--scenario sweep`` — the simulate-once / price-many check: price a
  32-point density x BPG-timeout grid with the pre-batching per-point
  pipeline and with the batched evaluator (cold and warm memos), and
  fail unless the batched cold pass beats the serial one by
  ``--min-speedup``::

      python tools/bench.py --scenario sweep --min-speedup 2 \\
          --output BENCH_4.json
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# CI regression floors (referenced by .github/workflows/ci.yml).  Both
# are deliberately far below the speedups recorded in the committed
# BENCH payloads (cache-warm reruns and batched sweeps measure >= 2x on
# a quiet machine) so shared-runner noise cannot flake the gate, while
# a genuine regression — a cache that stopped caching, a batcher that
# fell back to per-point pricing — still fails it.
SMOKE_MIN_SPEEDUP = 1.05
SWEEP_MIN_SPEEDUP = 1.4
HOTPATH_MIN_SPEEDUP = 1.3

# --scenario outofcore floor: the streamed PR convergence must sustain
# at least this many edge-traversals per second.  Far below what the
# vectorized kernels measure (tens of millions/s) so runner noise and
# slow CI disks cannot flake the gate, while a path that silently fell
# back to per-edge work would still fail it.
OUTOFCORE_MIN_EDGES_PER_S = 500_000.0

# --scenario stream floors: the bounded-staleness engine must sustain
# at least this many updates/second on an append-only stream, and
# answering the update+query schedule through incremental maintenance
# must not lose badly to serial from-scratch replay.  The committed
# BENCH_10.json records >= 1.0x (the ISSUE 10 acceptance bar: engine
# no slower than serial) and six-figure updates/s on a quiet machine;
# the CI floors sit below so shared-runner noise cannot flake the
# gate, while an engine that fell back to rebuild-per-query (~0.3x on
# the read-heavy mix) still fails it clearly.
STREAM_MIN_SPEEDUP = 0.85
STREAM_MIN_UPDATES_PER_S = 25_000.0

# --scenario tune floor: the exhaustive autotuner engine must price at
# least this many configurations per second on a warm counts cache.
# The committed BENCH_9.json records >= 10,000/s on a quiet machine
# (the ISSUE 9 acceptance bar); the CI floor sits well below so shared
# runners cannot flake it, while an engine that fell back to per-point
# scheduling (~50/s) still fails by orders of magnitude.
TUNE_MIN_CONFIGS_PER_S = 2_500.0

# --smoke parallel_not_slower: jobs=2 may exceed serial wall-clock by
# at most this factor on >= 2 cores (grace absorbs shared-runner
# noise; a fan-out that genuinely loses to serial — e.g. graphs
# pickled per task again — blows well past it).
PARALLEL_GRACE = 1.10


def run_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import bench_experiments, write_bench

    payload = bench_experiments(args.experiments or None, jobs=args.jobs)
    if args.baseline_total_s is not None:
        payload["baseline"] = {
            "total_s": args.baseline_total_s,
            "note": args.baseline_note,
            "speedup": args.baseline_total_s / payload["total_s"],
        }
    path = write_bench(payload, args.output)
    print(f"wrote {path}: {len(payload['experiments'])} experiment(s), "
          f"total {payload['total_s']:.2f}s, jobs={args.jobs}")
    return 0


def run_sweep_scenario(args: argparse.Namespace) -> int:
    from repro.perf.bench import bench_sweep_scenario, write_bench

    min_speedup = (SWEEP_MIN_SPEEDUP if args.min_speedup is None
                   else args.min_speedup)
    payload = bench_sweep_scenario()
    payload["min_speedup"] = min_speedup
    path = write_bench(payload, args.output)
    print(f"sweep scenario [{payload['points']} points]: "
          f"serial {payload['serial_s']:.3f}s, "
          f"batch cold {payload['batch_cold_s']:.3f}s "
          f"({payload['speedup_cold']:.2f}x), "
          f"warm {payload['batch_warm_s']:.3f}s "
          f"({payload['speedup_warm']:.2f}x); wrote {path}")
    if payload["speedup_cold"] < min_speedup:
        print(f"FAIL: batched cold sweep was not >= "
              f"{min_speedup:.2f}x faster than the serial path",
              file=sys.stderr)
        return 1
    return 0


def run_hotpath_scenario(args: argparse.Namespace) -> int:
    from repro.perf.bench import bench_hotpath_scenario, write_bench

    min_speedup = (HOTPATH_MIN_SPEEDUP if args.min_speedup is None
                   else args.min_speedup)
    payload = bench_hotpath_scenario(jobs=max(args.jobs, 2))
    payload["min_speedup"] = min_speedup
    path = write_bench(payload, args.output)
    parallel = payload["parallel"]
    if parallel.get("skipped"):
        parallel_note = f"parallel skipped ({parallel['reason']})"
    else:
        parallel_note = (f"serial {parallel['serial_s']:.2f}s vs "
                         f"jobs{parallel['jobs']} "
                         f"{parallel['jobs_s']:.2f}s "
                         f"({parallel['speedup']:.2f}x)")
    print(f"hotpath scenario: cold {payload['cold_total_s']:.2f}s, "
          f"warm {payload['warm_total_s']:.2f}s; replay serial "
          f"{payload['replay_serial_s']:.3f}s vs batched "
          f"{payload['replay_batched_s']:.3f}s "
          f"({payload['speedup_replay']:.2f}x, need >= "
          f"{min_speedup:.2f}x); {parallel_note}; wrote {path}")
    failed = False
    if payload["speedup_replay"] < min_speedup:
        print(f"FAIL: batched request replay was not >= "
              f"{min_speedup:.2f}x faster than per-request replay",
              file=sys.stderr)
        failed = True
    if not parallel.get("skipped") \
            and parallel["jobs_s"] > parallel["serial_s"] * PARALLEL_GRACE:
        print("FAIL: parallel hot-path run was slower than serial on a "
              "multi-core host", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def run_outofcore_scenario(args: argparse.Namespace) -> int:
    from repro.perf.bench import bench_outofcore_scenario, write_bench

    floor = (OUTOFCORE_MIN_EDGES_PER_S if args.min_edges_per_s is None
             else args.min_edges_per_s)
    payload = bench_outofcore_scenario(
        num_vertices=args.ooc_vertices,
        num_edges=args.ooc_edges,
        shard_edges=args.ooc_shard_edges,
        jobs=args.jobs,
    )
    payload["min_edges_per_s"] = floor
    path = write_bench(payload, args.output)
    budget = payload["memory_budget"]
    pr = payload["algorithms"]["PR"]
    print(f"outofcore scenario [|V|={payload['num_vertices']:,} "
          f"|E|={payload['num_edges']:,}, "
          f"{payload['num_shards']} shard(s)]: "
          f"generate {payload['generate_s']:.1f}s "
          f"({payload['generate_edges_per_s']:,.0f} e/s), "
          f"verify {payload['verify_s']:.1f}s, "
          f"PR x{pr['iterations']} {pr['converge_s']:.1f}s "
          f"({pr['edges_per_s']:,.0f} e/s), "
          f"counts {payload['counts_s']:.1f}s; resident "
          f"{budget['resident_bytes'] / 2**20:,.0f} MiB vs "
          f"{budget['disk_bytes'] / 2**20:,.0f} MiB on disk; wrote {path}")
    if pr["edges_per_s"] < floor:
        print(f"FAIL: streamed PR sustained {pr['edges_per_s']:,.0f} "
              f"edges/s, floor is {floor:,.0f}", file=sys.stderr)
        return 1
    return 0


def run_tune_scenario(args: argparse.Namespace) -> int:
    from repro.perf.bench import bench_tune_scenario, write_bench

    floor = (TUNE_MIN_CONFIGS_PER_S if args.min_configs_per_s is None
             else args.min_configs_per_s)
    payload = bench_tune_scenario()
    payload["min_configs_per_s"] = floor
    path = write_bench(payload, args.output)
    guided = payload["guided"]
    print(f"tune scenario [{payload['points']} pricing configs x "
          f"{payload['repeats']} repeat(s)]: "
          f"cold {payload['exhaustive_cold_s']:.3f}s, warm "
          f"{payload['exhaustive_warm_s']:.3f}s "
          f"({payload['configs_per_s_warm']:,.0f} configs/s, need >= "
          f"{floor:,.0f}); guided full-budget regret "
          f"{guided['full_budget']['edp_regret']:.3g}, reduced-budget "
          f"({guided['reduced_budget']['budget']}/"
          f"{guided['space_size']}) regret "
          f"{guided['reduced_budget']['edp_regret']:.3g}; wrote {path}")
    failed = False
    if payload["configs_per_s_warm"] < floor:
        print(f"FAIL: exhaustive engine priced "
              f"{payload['configs_per_s_warm']:,.0f} configs/s, floor "
              f"is {floor:,.0f}", file=sys.stderr)
        failed = True
    if not guided["full_budget"]["frontier_matches_exhaustive"]:
        print("FAIL: guided engine at full budget did not reproduce "
              "the exhaustive frontier (expected zero regret)",
              file=sys.stderr)
        failed = True
    if guided["full_budget"]["edp_regret"] != 0.0:
        print("FAIL: guided engine at full budget has non-zero EDP "
              "regret", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def run_stream_scenario(args: argparse.Namespace) -> int:
    from repro.perf.bench import bench_stream_scenario, write_bench

    min_speedup = (STREAM_MIN_SPEEDUP if args.min_speedup is None
                   else args.min_speedup)
    floor = (STREAM_MIN_UPDATES_PER_S if args.min_updates_per_s is None
             else args.min_updates_per_s)
    payload = bench_stream_scenario()
    payload["min_speedup"] = min_speedup
    payload["min_updates_per_s"] = floor
    path = write_bench(payload, args.output)
    churn = payload["churn"]
    parts = []
    for name, leg in payload["mixes"].items():
        parts.append(f"{name} {leg['updates_per_second']:,.0f} up/s "
                     f"({leg['speedup_vs_serial']:.2f}x vs serial)")
    print(f"stream scenario [{payload['num_updates']:,} updates x "
          f"{payload['repeats']} repeat(s), insert-only]: "
          f"{'; '.join(parts)}; churn(df=0.2) "
          f"{churn['speedup_vs_serial']:.2f}x (not gated); wrote {path}")
    failed = False
    for name, leg in payload["mixes"].items():
        if leg["speedup_vs_serial"] < min_speedup:
            print(f"FAIL: {name} engine path was {leg['speedup_vs_serial']:.2f}x "
                  f"vs serial replay, floor is {min_speedup:.2f}x",
                  file=sys.stderr)
            failed = True
        # The rate floor gates only the ingest-dominated mix: the
        # read-heavy mix's updates/s is bounded by its query cadence,
        # which is the point of that leg, not a regression.
        if name == "update-heavy" and leg["updates_per_second"] < floor:
            print(f"FAIL: {name} sustained {leg['updates_per_second']:,.0f} "
                  f"updates/s, floor is {floor:,.0f}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


def _timed_subprocess(experiment: str, env: dict) -> float:
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-c",
         "from repro.experiments import ALL_EXPERIMENTS; "
         f"ALL_EXPERIMENTS[{experiment!r}]()"],
        env=env, check=True, cwd=REPO_ROOT,
    )
    return time.perf_counter() - start


def _timed_run_selected(names: list[str], jobs: int, env: dict) -> float:
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-c",
         "from repro.experiments import run_selected; "
         f"run_selected({names!r}, save=False, jobs={jobs})"],
        env=env, check=True, cwd=REPO_ROOT,
    )
    return time.perf_counter() - start


def _parallel_not_slower_check(env: dict) -> dict:
    """``--smoke``'s fan-out guard: jobs=2 must not lose to serial.

    Runs fig20+fig21 cold (fresh cache directory per leg, fresh
    subprocesses) serially and with two workers.  Skipped — recorded,
    not silently passed — on single-core hosts, where fan-out cannot
    win and the old misleading green would reappear.
    """
    cpu = os.cpu_count() or 1
    names = ["fig20", "fig21"]
    check: dict = {"check": "parallel_not_slower", "cpu_count": cpu,
                   "experiments": names, "grace": PARALLEL_GRACE}
    if cpu < 2:
        check["skipped"] = True
        check["reason"] = f"cpu_count={cpu} < 2: fan-out cannot win"
        return check
    serial_env = dict(env)
    serial_env["REPRO_CACHE_DIR"] = tempfile.mkdtemp(
        prefix="repro-bench-pns-serial-"
    )
    jobs_env = dict(env)
    jobs_env["REPRO_CACHE_DIR"] = tempfile.mkdtemp(
        prefix="repro-bench-pns-jobs-"
    )
    check["skipped"] = False
    check["serial_s"] = _timed_run_selected(names, 1, serial_env)
    check["jobs2_s"] = _timed_run_selected(names, 2, jobs_env)
    check["speedup"] = check["serial_s"] / check["jobs2_s"]
    check["ok"] = check["jobs2_s"] <= check["serial_s"] * PARALLEL_GRACE
    return check


def run_smoke(args: argparse.Namespace) -> int:
    from repro.perf.bench import BENCH_SCHEMA, write_bench

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-smoke-")
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    min_speedup = (SMOKE_MIN_SPEEDUP if args.min_speedup is None
                   else args.min_speedup)
    experiment = args.experiments[0] if args.experiments else "headline"
    cold = _timed_subprocess(experiment, env)
    warm = _timed_subprocess(experiment, env)
    speedup = cold / warm if warm > 0 else float("inf")

    parallel = _parallel_not_slower_check(env)

    payload = {
        "schema": BENCH_SCHEMA,
        "mode": "smoke",
        "experiment": experiment,
        "cold_s": cold,
        "warm_s": warm,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "parallel_not_slower": parallel,
    }
    path = write_bench(payload, args.output)
    if parallel.get("skipped"):
        parallel_note = f"parallel check skipped ({parallel['reason']})"
    else:
        parallel_note = (f"parallel fig20+fig21 serial "
                         f"{parallel['serial_s']:.2f}s vs jobs2 "
                         f"{parallel['jobs2_s']:.2f}s")
    print(f"smoke [{experiment}]: cold {cold:.2f}s, warm {warm:.2f}s, "
          f"speedup {speedup:.2f}x (need >= {min_speedup:.2f}x); "
          f"{parallel_note}; wrote {path}")
    failed = False
    if speedup < min_speedup:
        print("FAIL: cache-warm run was not measurably faster",
              file=sys.stderr)
        failed = True
    if not parallel.get("skipped") and not parallel["ok"]:
        print("FAIL: jobs=2 was slower than serial on a multi-core "
              "host (parallel_not_slower)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--experiments", nargs="*", metavar="NAME",
                        help="experiment ids (default: all; in --smoke "
                             "mode only the first is used, default "
                             "'headline')")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--output", default="BENCH.json",
                        help="payload path (default BENCH.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="cold-vs-warm cache regression check")
    parser.add_argument("--scenario",
                        choices=["sweep", "hotpath", "outofcore", "tune",
                                 "stream"],
                        help="timed scenario: 'sweep' prices a "
                             "32-point density x BPG-timeout grid "
                             "serially and batched (cold + warm); "
                             "'hotpath' times fig20/fig21/the "
                             "executor-model ablation cold+warm plus "
                             "batched-vs-serial request replay and a "
                             "jobs-vs-serial fan-out on >= 2 cores; "
                             "'outofcore' streams an R-MAT to an "
                             "on-disk shard store at paper scale "
                             "(default: live-journal's 4.85M/69M) and "
                             "times generation, verification, streamed "
                             "PR/BFS and the per-shard counts merge; "
                             "'tune' times the autotuner's exhaustive "
                             "engine over a 360-point pricing space "
                             "(configs/s, warm counts cache) and gates "
                             "the guided engine's zero-regret promise "
                             "at full budget; "
                             "'stream' replays an append-only update "
                             "log through the bounded-staleness engine "
                             "under the update-heavy and read-heavy "
                             "mixes and gates sustained updates/s plus "
                             "engine-vs-serial-rebuild parity")
    parser.add_argument("--ooc-vertices", type=int, default=4_850_000,
                        help="--scenario outofcore: vertex count "
                             "(default: live-journal's 4,850,000)")
    parser.add_argument("--ooc-edges", type=int, default=69_000_000,
                        help="--scenario outofcore: edge count "
                             "(default: live-journal's 69,000,000)")
    parser.add_argument("--ooc-shard-edges", type=int, default=1 << 22,
                        help="--scenario outofcore: edges per shard "
                             "(default 2^22)")
    parser.add_argument("--min-edges-per-s", type=float, default=None,
                        help="--scenario outofcore: minimum sustained "
                             "streamed-PR rate (defaults to "
                             f"{OUTOFCORE_MIN_EDGES_PER_S:,.0f})")
    parser.add_argument("--min-updates-per-s", type=float, default=None,
                        help="--scenario stream: minimum sustained "
                             "ingest rate (defaults to "
                             f"{STREAM_MIN_UPDATES_PER_S:,.0f})")
    parser.add_argument("--min-configs-per-s", type=float, default=None,
                        help="--scenario tune: minimum warm exhaustive "
                             "pricing rate (defaults to "
                             f"{TUNE_MIN_CONFIGS_PER_S:,.0f})")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="--smoke / --scenario: minimum speedup "
                             "ratio (defaults to "
                             f"SMOKE_MIN_SPEEDUP={SMOKE_MIN_SPEEDUP} / "
                             f"SWEEP_MIN_SPEEDUP={SWEEP_MIN_SPEEDUP} / "
                             f"HOTPATH_MIN_SPEEDUP={HOTPATH_MIN_SPEEDUP})")
    parser.add_argument("--baseline-total-s", type=float, default=None,
                        help="record a reference total (e.g. the "
                             "pre-optimization serial wall-clock) in "
                             "the payload")
    parser.add_argument("--baseline-note", default="",
                        help="annotation for --baseline-total-s")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    if args.scenario == "sweep":
        return run_sweep_scenario(args)
    if args.scenario == "hotpath":
        return run_hotpath_scenario(args)
    if args.scenario == "outofcore":
        return run_outofcore_scenario(args)
    if args.scenario == "tune":
        return run_tune_scenario(args)
    if args.scenario == "stream":
        return run_stream_scenario(args)
    return run_bench(args)


if __name__ == "__main__":
    raise SystemExit(main())
