#!/usr/bin/env python
"""Timing harness CLI: record experiment wall-clock into BENCH_*.json.

Two modes:

* default — time experiment drivers in-process (optionally fanned out
  with ``--jobs``) via :func:`repro.perf.bench.bench_experiments` and
  write the payload::

      PYTHONPATH=src python tools/bench.py --output BENCH_2.json
      PYTHONPATH=src python tools/bench.py --jobs 4

* ``--smoke`` — the CI regression check: run one experiment twice in
  fresh subprocesses sharing a fresh run-cache directory, and fail
  (exit 1) unless the cache-warm second run is measurably faster than
  the cache-cold first run.  The measured times are written to
  ``--output`` as well, so CI can upload them as an artifact::

      python tools/bench.py --smoke --output BENCH_2.json

* ``--scenario sweep`` — the simulate-once / price-many check: price a
  32-point density x BPG-timeout grid with the pre-batching per-point
  pipeline and with the batched evaluator (cold and warm memos), and
  fail unless the batched cold pass beats the serial one by
  ``--min-speedup``::

      python tools/bench.py --scenario sweep --min-speedup 2 \\
          --output BENCH_4.json
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# CI regression floors (referenced by .github/workflows/ci.yml).  Both
# are deliberately far below the speedups recorded in the committed
# BENCH payloads (cache-warm reruns and batched sweeps measure >= 2x on
# a quiet machine) so shared-runner noise cannot flake the gate, while
# a genuine regression — a cache that stopped caching, a batcher that
# fell back to per-point pricing — still fails it.
SMOKE_MIN_SPEEDUP = 1.05
SWEEP_MIN_SPEEDUP = 1.4


def run_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import bench_experiments, write_bench

    payload = bench_experiments(args.experiments or None, jobs=args.jobs)
    if args.baseline_total_s is not None:
        payload["baseline"] = {
            "total_s": args.baseline_total_s,
            "note": args.baseline_note,
            "speedup": args.baseline_total_s / payload["total_s"],
        }
    path = write_bench(payload, args.output)
    print(f"wrote {path}: {len(payload['experiments'])} experiment(s), "
          f"total {payload['total_s']:.2f}s, jobs={args.jobs}")
    return 0


def run_sweep_scenario(args: argparse.Namespace) -> int:
    from repro.perf.bench import bench_sweep_scenario, write_bench

    min_speedup = (SWEEP_MIN_SPEEDUP if args.min_speedup is None
                   else args.min_speedup)
    payload = bench_sweep_scenario()
    payload["min_speedup"] = min_speedup
    path = write_bench(payload, args.output)
    print(f"sweep scenario [{payload['points']} points]: "
          f"serial {payload['serial_s']:.3f}s, "
          f"batch cold {payload['batch_cold_s']:.3f}s "
          f"({payload['speedup_cold']:.2f}x), "
          f"warm {payload['batch_warm_s']:.3f}s "
          f"({payload['speedup_warm']:.2f}x); wrote {path}")
    if payload["speedup_cold"] < min_speedup:
        print(f"FAIL: batched cold sweep was not >= "
              f"{min_speedup:.2f}x faster than the serial path",
              file=sys.stderr)
        return 1
    return 0


def _timed_subprocess(experiment: str, env: dict) -> float:
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-c",
         "from repro.experiments import ALL_EXPERIMENTS; "
         f"ALL_EXPERIMENTS[{experiment!r}]()"],
        env=env, check=True, cwd=REPO_ROOT,
    )
    return time.perf_counter() - start


def run_smoke(args: argparse.Namespace) -> int:
    from repro.perf.bench import BENCH_SCHEMA, write_bench

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-smoke-")
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    min_speedup = (SMOKE_MIN_SPEEDUP if args.min_speedup is None
                   else args.min_speedup)
    experiment = args.experiments[0] if args.experiments else "headline"
    cold = _timed_subprocess(experiment, env)
    warm = _timed_subprocess(experiment, env)
    speedup = cold / warm if warm > 0 else float("inf")

    payload = {
        "schema": BENCH_SCHEMA,
        "mode": "smoke",
        "experiment": experiment,
        "cold_s": cold,
        "warm_s": warm,
        "speedup": speedup,
        "min_speedup": min_speedup,
    }
    path = write_bench(payload, args.output)
    print(f"smoke [{experiment}]: cold {cold:.2f}s, warm {warm:.2f}s, "
          f"speedup {speedup:.2f}x (need >= {min_speedup:.2f}x); "
          f"wrote {path}")
    if speedup < min_speedup:
        print("FAIL: cache-warm run was not measurably faster",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--experiments", nargs="*", metavar="NAME",
                        help="experiment ids (default: all; in --smoke "
                             "mode only the first is used, default "
                             "'headline')")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--output", default="BENCH.json",
                        help="payload path (default BENCH.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="cold-vs-warm cache regression check")
    parser.add_argument("--scenario", choices=["sweep"],
                        help="timed scenario: 'sweep' prices a "
                             "32-point density x BPG-timeout grid "
                             "serially and batched (cold + warm)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="--smoke / --scenario sweep: minimum "
                             "speedup ratio (defaults to "
                             f"SMOKE_MIN_SPEEDUP={SMOKE_MIN_SPEEDUP} / "
                             f"SWEEP_MIN_SPEEDUP={SWEEP_MIN_SPEEDUP})")
    parser.add_argument("--baseline-total-s", type=float, default=None,
                        help="record a reference total (e.g. the "
                             "pre-optimization serial wall-clock) in "
                             "the payload")
    parser.add_argument("--baseline-note", default="",
                        help="annotation for --baseline-total-s")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    if args.scenario == "sweep":
        return run_sweep_scenario(args)
    return run_bench(args)


if __name__ == "__main__":
    raise SystemExit(main())
