#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs all experiment drivers (Tables 1-4, Figs. 9-21, plus the ablation
studies) and writes the formatted tables under ``results/``.  This is
the one-command reproduction entry point; EXPERIMENTS.md records how
each output compares with the published numbers.

Run:  python examples/paper_figures.py            # everything
      python examples/paper_figures.py fig16 fig21  # a selection
"""

import sys
import time

from repro.experiments import ALL_EXPERIMENTS, RESULTS_DIR


def main(selection: list[str]) -> None:
    names = selection or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        known = ", ".join(ALL_EXPERIMENTS)
        raise SystemExit(f"unknown experiment(s) {unknown}; known: {known}")

    for name in names:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        path = result.save()
        elapsed = time.perf_counter() - start
        print(f"[{elapsed:6.1f}s] {name}: {len(result.rows)} rows "
              f"-> {path}")
        print(result.format())
        print()

    print(f"all tables written under {RESULTS_DIR}")


if __name__ == "__main__":
    main(sys.argv[1:])
