#!/usr/bin/env python
"""Inspect the Algorithm-2 working flow phase by phase (Section 4.3).

Materialises the Loading / Assigning / Rerouting / Processing /
Synchronizing / Updating timeline of one PageRank iteration on a small
graph, prints the first steps as a text Gantt chart and summarises
where the time goes.

Run:  python examples/phase_timeline.py
"""

from repro import HyVEConfig, PageRank, rmat
from repro.arch import PhaseKind, phase_profile, power_profile, schedule_phases


def main() -> None:
    graph = rmat(4096, 32768, seed=3, name="timeline-demo")
    config = HyVEConfig(num_intervals=16)
    phases = schedule_phases(PageRank(), graph, config, iterations=1)

    print(f"{len(phases)} phases for one PageRank iteration "
          f"(P=16 intervals, N=8 PUs)\n")
    print("first 18 phases:")
    for phase in phases[:18]:
        bar = "#" * max(1, min(40, int(phase.duration * 1e9 / 250)))
        print(f"  {phase.start * 1e6:8.2f} us  {phase.kind.value:14s} "
              f"{bar:40s} {phase.detail}")

    profile = phase_profile(phases)
    total = sum(profile.values())
    print("\ntime per phase kind:")
    for kind in PhaseKind:
        share = profile[kind.value] / total
        print(f"  {kind.value:14s} {profile[kind.value] * 1e6:9.2f} us "
              f"({100 * share:5.1f}%)")
    print(f"\nserialised timeline length: {total * 1e6:.2f} us "
          "(the pipelined machine overlaps streaming with compute)")

    profile = power_profile(PageRank(), graph, config)
    print(f"\npower profile: average {profile.average_power:.3f} W, "
          f"peak {profile.peak_power:.3f} W")
    for kind, watts in profile.by_kind().items():
        print(f"  {kind:14s} {watts:6.3f} W")


if __name__ == "__main__":
    main()
