#!/usr/bin/env python
"""Quickstart: simulate PageRank on the HyVE memory hierarchy.

Builds a small scale-free graph, runs PageRank on the optimised HyVE
machine and on the conventional acc+SRAM+DRAM baseline, and prints the
energy/time reports plus the Fig.-17-style breakdown.

Run:  python examples/quickstart.py
"""

from repro import AcceleratorMachine, HyVEConfig, PageRank, make_machine, rmat


def main() -> None:
    # 1. A synthetic scale-free graph (100k vertices, 1M edges).
    graph = rmat(100_000, 1_000_000, seed=42, name="demo")
    print(f"graph: {graph}")

    # 2. The optimised HyVE machine: ReRAM edge memory, DRAM vertex
    #    memory, 8 PUs with 2 MB scratchpads, data sharing + power gating.
    hyve = AcceleratorMachine(HyVEConfig())
    result = hyve.run(PageRank(), graph)
    print("\n" + result.report.summary())
    print("top-ranked vertex:", int(result.values.argmax()))

    print("\nenergy breakdown:")
    for bucket, share in result.report.breakdown().items():
        print(f"  {bucket:18s} {100 * share:5.1f}%")

    # 3. Compare against the conventional hierarchy (edges in DRAM).
    baseline = make_machine("acc+SRAM+DRAM").run(PageRank(), graph)
    gain = result.report.mteps_per_watt / baseline.report.mteps_per_watt
    print(f"\n{baseline.report.summary()}")
    print(f"HyVE-opt is {gain:.2f}x more energy-efficient than "
          "acc+SRAM+DRAM on this workload")


if __name__ == "__main__":
    main()
