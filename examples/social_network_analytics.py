#!/usr/bin/env python
"""Social-network analytics on HyVE: the paper's motivating workload.

Social graphs are the introduction's headline use case: influence
ranking (PageRank), community structure (connected components) and
friend-of-friend reachability (BFS) over a heavily skewed follower
graph.  This example runs all three on a Twitter-like synthetic graph
and reports, per algorithm, how the full machine hierarchy behaves —
including where the energy goes and what the CPU alternative would
have cost.

Run:  python examples/social_network_analytics.py
"""

import numpy as np

from repro import (
    BFS,
    AcceleratorMachine,
    ConnectedComponents,
    CPUMachine,
    PageRank,
    rmat,
)
from repro.graph.stats import GraphShape


def main() -> None:
    # A follower graph: heavy-tailed in-degree, 50k users, 600k follows.
    graph = rmat(50_000, 600_000, a=0.6, b=0.15, c=0.15, seed=7,
                 name="followers")
    shape = GraphShape.of(graph)
    print(f"follower graph: {graph.num_vertices:,} users, "
          f"{graph.num_edges:,} follows")
    print(f"  max in-degree (top influencer): {shape.in_degree.maximum}")
    print(f"  mean out-degree: {shape.out_degree.mean:.1f}")

    hyve = AcceleratorMachine()
    cpu = CPUMachine()

    for algorithm in (PageRank(), ConnectedComponents(), BFS(root=0)):
        result = hyve.run(algorithm, graph)
        cpu_result = cpu.run(algorithm, graph)
        report = result.report
        print(f"\n== {report.algorithm} ==")
        if report.algorithm == "PR":
            top = np.argsort(result.values)[-3:][::-1]
            print(f"  top influencers: {top.tolist()}")
        elif report.algorithm == "CC":
            communities = len(np.unique(result.values))
            print(f"  connected communities: {communities}")
        else:
            reached = int((result.values < np.iinfo(np.int64).max).sum())
            print(f"  users reachable from user 0: {reached:,}")
        print(f"  HyVE: {report.total_energy * 1e3:8.3f} mJ, "
              f"{report.time * 1e3:7.2f} ms, "
              f"{report.mteps_per_watt:8.0f} MTEPS/W")
        print(f"  CPU : {cpu_result.report.total_energy * 1e3:8.3f} mJ, "
              f"{cpu_result.report.time * 1e3:7.2f} ms, "
              f"{cpu_result.report.mteps_per_watt:8.0f} MTEPS/W")
        saving = (
            cpu_result.report.total_energy / report.total_energy
        )
        print(f"  energy saving vs CPU: {saving:.0f}x")


if __name__ == "__main__":
    main()
