#!/usr/bin/env python
"""Evolving webgraph: dynamic updates plus periodic re-ranking.

The paper's Section 5 scenario: a web graph changes continuously (pages
appear and vanish, links are added and removed) while PageRank must stay
fresh.  This example ingests a stream of updates through HyVE's O(1)
incremental store — no re-preprocessing — and re-ranks after every
batch, reporting both the update throughput and the energy of each
ranking pass.

Run:  python examples/dynamic_stream.py
"""

import time

import numpy as np

from repro import AcceleratorMachine, DynamicGraphStore, PageRank, rmat
from repro.dynamic import apply_requests, generate_requests


def main() -> None:
    graph = rmat(20_000, 150_000, seed=11, name="webgraph")
    store = DynamicGraphStore(graph, num_intervals=32)
    machine = AcceleratorMachine()
    print(f"initial web graph: {graph.num_vertices:,} pages, "
          f"{graph.num_edges:,} links\n")

    for batch in range(1, 4):
        requests = generate_requests(
            store.to_graph(),
            15_000,
            seed=batch,
            exclude_vertices=store.invalid_vertices(),
        )
        start = time.perf_counter()
        changed = apply_requests(store, requests)
        elapsed = time.perf_counter() - start
        throughput = changed / elapsed / 1e6

        snapshot = store.to_graph(f"webgraph-batch{batch}")
        result = machine.run(PageRank(), snapshot)
        top = int(np.argmax(result.values))
        print(f"batch {batch}: {len(requests):,} requests, "
              f"{changed:,} link changes at {throughput:.2f} M changes/s")
        print(f"  graph now {store.num_edges:,} links "
              f"({store.stats.extensions_allocated} block extensions, "
              f"{store.stats.repartitions} repartitions)")
        print(f"  re-rank: {result.report.total_energy * 1e3:.3f} mJ, "
              f"top page = {top}\n")

    print("cumulative update stats:", store.stats)


if __name__ == "__main__":
    main()
