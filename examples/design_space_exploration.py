#!/usr/bin/env python
"""Design-space exploration with the HyVE machine model.

An architect sizing a HyVE-style accelerator wants to know: how much
per-PU SRAM, how many processing units, and which ReRAM cell should the
edge memory use?  This example sweeps all three axes on the LiveJournal
workload and prints the efficiency landscape — the same methodology as
the paper's Sections 7.2.1-7.2.3, driven through the public API.

Run:  python examples/design_space_exploration.py
"""

from repro import AcceleratorMachine, HyVEConfig, PageRank, Workload
from repro.memory import ReRAMCellParams, ReRAMConfig
from repro.units import MB


def sweep_sram(workload: Workload) -> None:
    print("== per-PU SRAM capacity (PR, MTEPS/W) ==")
    for size_mb in (1, 2, 4, 8, 16):
        machine = AcceleratorMachine(
            HyVEConfig(label=f"{size_mb}MB", sram_bits=size_mb * MB)
        )
        report = machine.run(PageRank(), workload).report
        counts = machine.run_counts(PageRank(), workload)
        print(
            f"  {size_mb:3d} MB: {report.mteps_per_watt:8.1f} MTEPS/W "
            f"(P = {counts.num_intervals} intervals)"
        )


def sweep_pus(workload: Workload) -> None:
    print("\n== processing-unit count (PR, MTEPS/W) ==")
    for n in (1, 2, 4, 8, 16, 32):
        machine = AcceleratorMachine(HyVEConfig(label=f"N={n}", num_pus=n))
        report = machine.run(PageRank(), workload).report
        print(f"  N = {n:2d}: {report.mteps_per_watt:8.1f} MTEPS/W "
              f"({report.time * 1e3:7.1f} ms)")


def sweep_cells(workload: Workload) -> None:
    print("\n== ReRAM cell bits for the edge memory (PR, MTEPS/W) ==")
    for bits in (1, 2, 3):
        config = HyVEConfig(
            label=f"{bits}-bit",
            reram=ReRAMConfig(cell=ReRAMCellParams(cell_bits=bits)),
        )
        report = AcceleratorMachine(config).run(PageRank(), workload).report
        kind = "SLC" if bits == 1 else f"{bits}-bit MLC"
        print(f"  {kind:10s}: {report.mteps_per_watt:8.1f} MTEPS/W")


def main() -> None:
    workload = Workload.from_dataset("LJ")
    print(f"workload: live-journal at paper scale "
          f"({workload.reported_vertices:,} vertices, "
          f"{workload.reported_edges:,} edges)\n")
    sweep_sram(workload)
    sweep_pus(workload)
    sweep_cells(workload)
    print("\nconclusion: 2 MB scratchpads, 8 PUs and SLC cells — the "
          "paper's chosen design point — sit at or near every optimum.")


if __name__ == "__main__":
    main()
